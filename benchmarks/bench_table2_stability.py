"""E1 — Table 2: benchmark-selection relative standard deviations.

Runs every DaCapo benchmark repeatedly under the paper's baseline
configuration (ParallelOld, ~16 GB heap, ~5.6 GB young, system GC on) and
reports the RSD of the final iteration and of the total execution time.

Paper values (Table 2): h2 1.8/1.2, tomcat 1.8/1.2, xalan 6.4/4.2,
jython 5/3, pmd 1.1/0.8, luindex 2.8/4, batik 11.2/3.6 (%); eclipse,
tradebeans, tradesoap crash; all others exceed 5 % on both metrics.
"""

from repro import JVM, BenchmarkCrash, baseline_config
from repro.analysis.report import render_table
from repro.analysis.stability import stability_table
from repro.workloads.dacapo import ALL_BENCHMARKS, get_benchmark

from common import emit, once, quick_or_full

# Cheap enough to run at paper scale in both modes.
RUNS = quick_or_full(10, 10)
ITERATIONS = quick_or_full(10, 10)


def run_experiment():
    runs = {}
    crashed = []
    for name in ALL_BENCHMARKS:
        results = []
        try:
            for seed in range(RUNS):
                jvm = JVM(baseline_config(seed=seed))
                result = jvm.run(
                    get_benchmark(name), iterations=ITERATIONS, system_gc=True
                )
                if result.crashed:
                    raise BenchmarkCrash(name)
                results.append(result)
        except BenchmarkCrash:
            crashed.append(name)
            continue
        runs[name] = results
    return stability_table(runs, crashed=crashed)


def test_table2_stability(benchmark):
    rows = once(benchmark, run_experiment)
    text = render_table(
        ["Benchmark", "Final iteration (%)", "Total execution time (%)", "stable?"],
        [
            (
                r.benchmark,
                "crash" if r.crashed else f"{r.rsd_final_pct:.1f}",
                "crash" if r.crashed else f"{r.rsd_total_pct:.1f}",
                "yes" if r.stable else "no",
            )
            for r in rows
        ],
        title="Table 2 — RSD of total execution time and final iteration",
    )
    emit("table2_stability", text)

    by_name = {r.benchmark: r for r in rows}
    # The paper's three crashers crash.
    for name in ("eclipse", "tradebeans", "tradesoap"):
        assert by_name[name].crashed
    # The paper's stable subset is selected.
    for name in ("h2", "tomcat", "pmd", "luindex", "batik", "xalan", "jython"):
        assert by_name[name].stable, name
    # The unstable leftovers are rejected.
    for name in ("avrora", "fop", "lusearch", "sunflow"):
        assert not by_name[name].stable, name
