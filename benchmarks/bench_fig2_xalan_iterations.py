"""E3 — Figure 2: per-iteration execution time for xalan (iterations 4-10).

Paper shapes: with System.gc() per iteration (a), G1 is clearly slowest
and ParallelGC second slowest (their full collections are serial), with
ParallelOld fastest in the final iteration; without (b), all collectors
land close together.
"""

import numpy as np

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.gc import GC_NAMES
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

SEEDS = quick_or_full((1, 2, 3), (1, 2, 3, 4, 5))


def run_experiment():
    out = {}
    for system_gc in (True, False):
        for gc in GC_NAMES:
            per_iteration = []
            for seed in SEEDS:
                jvm = JVM(baseline_config(gc=gc, seed=seed))
                r = jvm.run(get_benchmark("xalan"), iterations=10,
                            system_gc=system_gc)
                per_iteration.append(r.iteration_times)
            out[(system_gc, gc)] = np.median(np.array(per_iteration), axis=0)
    return out


def test_fig2_xalan_iterations(benchmark):
    results = once(benchmark, run_experiment)
    lines = []
    for system_gc in (True, False):
        label = "(a) System GC" if system_gc else "(b) No System GC"
        lines.append(f"Figure 2{label} — iteration durations (s), iterations 4-10")
        rows = []
        for gc in GC_NAMES:
            iters = results[(system_gc, gc)]
            rows.append([gc] + [round(t, 3) for t in iters[3:]])
        lines.append(render_table(
            ["GC"] + [f"it{i}" for i in range(4, 11)], rows))
        lines.append("")
    emit("fig2_xalan_iterations", "\n".join(lines))

    finals_sysgc = {gc: results[(True, gc)][-1] for gc in GC_NAMES}
    assert max(finals_sysgc, key=finals_sysgc.get) == "G1GC"
    ranked = sorted(finals_sysgc, key=finals_sysgc.get)
    assert ranked[-2] == "ParallelGC"
    # ParallelOld sits in the fast group on the final iteration (the
    # paper's single run showed it strictly first).
    assert finals_sysgc["ParallelOldGC"] < finals_sysgc["SerialGC"]
    # Without System.gc() the spread collapses (paper: "all GCs perform
    # similarly in this case").
    finals_no = np.array([results[(False, gc)][-1] for gc in GC_NAMES])
    spread_no = finals_no.max() / finals_no.min()
    finals_with = np.array(list(finals_sysgc.values()))
    spread_with = finals_with.max() / finals_with.min()
    assert spread_no < spread_with
