"""E5 — Table 4: TLAB influence over all GCs and the stable benchmarks.

For every (benchmark, GC) pair, runs the baseline configuration with and
without TLABs and classifies the influence exactly as the paper does
(+ / = / − against a 5 % band of the average execution time).

Paper shape (Table 4): most cells are "=", with a handful of "+" and "−"
cells — TLABs are *not* uniformly beneficial (the headline finding of
§3.4). Like the paper, each cell compares a *single* run with and without
TLABs, so run-to-run variance contributes to the scattered non-neutral
cells (which is precisely the paper's point about the 5 % band).
"""

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.analysis.tlab import TLABInfluence, classify_tlab
from repro.gc import GC_NAMES
from repro.heap.tlab import TLABConfig
from repro.workloads.dacapo import STABLE_SUBSET, get_benchmark

from common import emit, once, quick_or_full

SEEDS = quick_or_full((0,), (0,))  # the paper compares single runs
ITERATIONS = quick_or_full(10, 10)
BENCHMARKS = ["batik", "h2", "jython", "luindex", "pmd", "tomcat", "xalan"]


def mean_exec(gc, name, tlab_enabled):
    total = 0.0
    for seed in SEEDS:
        cfg = baseline_config(
            gc=gc, seed=seed, tlab=TLABConfig(enabled=tlab_enabled)
        )
        result = JVM(cfg).run(get_benchmark(name), iterations=ITERATIONS,
                              system_gc=True)
        total += result.execution_time
    return total / len(SEEDS)


def run_experiment():
    table = {}
    for name in BENCHMARKS:
        for gc in GC_NAMES:
            with_tlab = mean_exec(gc, name, True)
            without = mean_exec(gc, name, False)
            table[(name, gc)] = classify_tlab(with_tlab, without)
    return table


def test_table4_tlab(benchmark):
    table = once(benchmark, run_experiment)
    rows = [
        [name] + [table[(name, gc)].value for gc in GC_NAMES]
        for name in BENCHMARKS
    ]
    text = render_table(
        ["Benchmark"] + list(GC_NAMES), rows,
        title="Table 4 — TLAB influence (+ improves, = neutral, - degrades)",
    )
    emit("table4_tlab", text)

    values = list(table.values())
    neutral = sum(1 for v in values if v is TLABInfluence.NEUTRAL)
    # "most of the time the TLAB does not have any influence"
    assert neutral >= len(values) * 0.5
    # "...but sometimes it even degrades the performance" — at least one
    # non-neutral cell exists in the matrix.
    assert any(v is not TLABInfluence.NEUTRAL for v in values)
