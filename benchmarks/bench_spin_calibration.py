"""Runner-speed calibration: a tiny pinned CPU spin.

This is *not* a simulator benchmark. It measures the host's single-core
Python throughput on a fixed, dependency-free integer workload, so the
perf pipeline (``run_perf.py`` / ``check_regression.py``) can tell "the
simulator got slower" apart from "this runner is slower than the one
that recorded the baseline". The regression gate divides every bench's
wall-clock ratio by the spin ratio before applying its threshold.

The workload is deliberately boring: pure-Python arithmetic over a fixed
iteration count, no allocation-heavy containers, no numpy (BLAS thread
counts vary across runners). pytest-benchmark does the timing.
"""

#: Fixed spin length. Never change this without regenerating every
#: committed baseline — the calibration compares across commits.
SPIN_N = 200_000


def _spin(n: int = SPIN_N) -> int:
    acc = 0
    for i in range(n):
        acc = (acc * 1103515245 + i) & 0xFFFFFFFF
    return acc


def test_spin_calibration(benchmark):
    result = benchmark(_spin)
    # Pinned result guards against the workload being optimized away.
    assert result == _spin()
