"""X1 — Extension: the evaluation the paper *planned* (§6, future work).

"Further on, we plan to implement and thoroughly test a garbage collector
that uses HTM ... We aim to repeat this evaluation of the GC impact on
application execution and compare the new approach to the current
available GCs."

This bench runs exactly that comparison: the HTM collector
(:class:`repro.gc.htm.HTMGC`, modelled on StackTrack/Collie) against the
six stock collectors on both of the paper's environments — a DaCapo
benchmark with forced full GCs (the stock collectors' worst case for
pauses) and the Cassandra stress test (ParallelOld's minutes-long full
GC). Expected outcome, per the literature the paper cites: pauses shrink
to milliseconds while throughput drops by a visible tax.
"""

import numpy as np

from repro import GB, JVM, JVMConfig, baseline_config
from repro.analysis.report import render_table
from repro.cassandra import CassandraServer, stress_config
from repro.gc import GC_NAMES
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

COLLECTORS = list(GC_NAMES) + ["HTMGC"]
SEEDS = quick_or_full((1, 2, 3), (1, 2, 3, 4, 5))


def dacapo_runs():
    out = {}
    for gc in COLLECTORS:
        execs, max_pauses = [], []
        for seed in SEEDS:
            jvm = JVM(baseline_config(gc=gc, seed=seed))
            r = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=True)
            execs.append(r.execution_time)
            max_pauses.append(r.gc_log.max_pause)
        out[gc] = (float(np.median(execs)), float(np.median(max_pauses)))
    return out


def cassandra_runs():
    out = {}
    for gc in ("ParallelOldGC", "G1GC", "HTMGC"):
        jvm = JVM(JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=3))
        server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
        r = jvm.run(server, duration=7200.0, ops_per_second=1350.0)
        out[gc] = (r.gc_log.max_pause, r.gc_log.total_pause, r.gc_log.full_count)
    return out


def run_experiment():
    return dacapo_runs(), cassandra_runs()


def test_extension_htm(benchmark):
    dacapo, cassandra = once(benchmark, run_experiment)
    lines = [render_table(
        ["GC", "xalan exec (s)", "max pause (ms)"],
        [(gc, round(t, 2), round(p * 1000, 1)) for gc, (t, p) in dacapo.items()],
        title="Future-work comparison — xalan, System.gc() per iteration",
    ), ""]
    lines.append(render_table(
        ["GC", "max pause (s)", "total pause (s)", "#full GCs"],
        [(gc, round(mx, 3), round(tot, 1), n) for gc, (mx, tot, n) in cassandra.items()],
        title="Future-work comparison — Cassandra stress test (2 h)",
    ))
    emit("extension_htm", "\n".join(lines))

    # Pauses collapse to milliseconds...
    assert dacapo["HTMGC"][1] < 0.02
    assert all(dacapo[gc][1] > 0.1 for gc in GC_NAMES)
    assert cassandra["HTMGC"][0] < 0.05
    assert cassandra["ParallelOldGC"][0] > 100.0
    # ...at a visible throughput cost relative to the best stock collector
    # on its home turf, but still competitive (no full-GC bill to pay).
    best_stock = min(dacapo[gc][0] for gc in GC_NAMES)
    assert dacapo["HTMGC"][0] > 0.8 * best_stock
    # On Cassandra the HTM collector removes the unacceptable pauses the
    # paper's conclusion warns about.
    assert cassandra["HTMGC"][2] == 0
