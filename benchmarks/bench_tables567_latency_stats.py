"""E10 — Tables 5, 6, 7: latency band statistics per GC.

For each collector, computes the paper's statistics over the full
operation trace (>1 M points): AVG/MAX/MIN, the 0.5x-1.5x AVG band, and
the >2^n x AVG bands, each with the share of requests and the share of GC
pauses associated with it.

Paper shape: every >2x AVG band has (near) 100 % of GCs associated with
it — all high latencies are GC-caused — while the 0.5x-1.5x band has 0 %.
"""

from repro import GB, JVMConfig
from repro.analysis.latency import latency_band_stats
from repro.analysis.report import render_table
from repro.cassandra import default_config
from repro.ycsb import WORKLOAD_A_LIKE, YCSBClient
from repro.ycsb.client import KIND_READ, KIND_UPDATE

from common import emit, once

SEED = 7
DURATION = 7200.0
TABLES = {"ParallelOld": "Table 5", "G1": "Table 6", "CMS": "Table 7"}


def run_experiment():
    out = {}
    for gc in TABLES:
        client = YCSBClient(WORKLOAD_A_LIKE, seed=SEED)
        cr = client.run(
            JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=SEED),
            default_config(64 * GB),
            duration=DURATION,
        )
        out[gc] = {
            "READ": latency_band_stats(cr.reads.op_times, cr.reads.latencies_ms,
                                       cr.pause_intervals),
            "UPDATE": latency_band_stats(cr.updates.op_times,
                                         cr.updates.latencies_ms,
                                         cr.pause_intervals),
        }
    return out


def test_tables567_latency_stats(benchmark):
    stats = once(benchmark, run_experiment)
    lines = []
    for gc, table in TABLES.items():
        read, update = stats[gc]["READ"], stats[gc]["UPDATE"]
        labels = [label for label, _v in read.rows()]
        read_vals = dict(read.rows())
        upd_vals = dict(update.rows())
        rows = [(label, read_vals.get(label, "-"), upd_vals.get(label, "-"))
                for label in labels]
        lines.append(render_table(
            ["metric", "READ", "UPDATE"], rows,
            title=f"{table} — latency statistics, {gc}",
        ))
        lines.append("")
    emit("tables567_latency_stats", "\n".join(lines))

    for gc in TABLES:
        for kind in ("READ", "UPDATE"):
            s = stats[gc][kind]
            assert s.min_ms < 1.5
            bands = {b.label: b for b in s.bands}
            # The paper's headline: the >=2x..>=16x bands are (near) fully
            # GC-attributed — all high latencies are GC-caused.
            for label in (">2x AVG", ">4x AVG", ">8x AVG", ">16x AVG"):
                if label in bands:
                    assert bands[label].pct_gcs > 90.0, (gc, kind, label)
            # ...while the mid band is not driven by GCs at all.
            assert bands["0.5x-1.5x AVG"].pct_gcs < 10.0
    # AVG ordering across collectors follows pause mass: PO > CMS > G1.
    read_avgs = {gc: stats[gc]["READ"].avg_ms for gc in TABLES}
    assert read_avgs["ParallelOld"] > read_avgs["CMS"] > read_avgs["G1"]
