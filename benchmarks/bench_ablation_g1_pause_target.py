"""A2 — Ablation: G1's MaxGCPauseMillis target on the Cassandra workload.

Sweeps the pause target from 50 ms to 1 s. G1 sizes its young generation
to meet the target, trading pause length against pause frequency; the
total pause time is roughly conserved until the target becomes
unreachable (fixed per-collection costs dominate at tiny targets).
"""

from repro import GB, JVM, JVMConfig
from repro.analysis.report import render_table
from repro.cassandra import CassandraServer, stress_config

from common import emit, once, quick_or_full

TARGETS = quick_or_full((0.05, 0.2, 1.0), (0.05, 0.1, 0.2, 0.5, 1.0))
SEED = 3
DURATION = quick_or_full(3600.0, 7200.0)


def run_experiment():
    out = {}
    for target in TARGETS:
        jvm = JVM(JVMConfig(gc="G1", heap=64 * GB, young=12 * GB, seed=SEED,
                            pause_target=target))
        server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
        out[target] = jvm.run(server, duration=DURATION, ops_per_second=1350.0)
    return out


def test_ablation_g1_pause_target(benchmark):
    runs = once(benchmark, run_experiment)
    rows = []
    for target, r in runs.items():
        log = r.gc_log
        rows.append((
            int(target * 1000),
            log.count,
            round(log.avg_pause, 3),
            round(log.max_pause, 2),
            round(log.total_pause, 1),
        ))
    text = render_table(
        ["target (ms)", "#pauses", "avg pause (s)", "max (s)", "total pause (s)"],
        rows,
        title="Ablation A2 — G1 pause-target sweep on Cassandra",
    )
    emit("ablation_g1_pause_target", text)

    lo, hi = runs[min(TARGETS)], runs[max(TARGETS)]
    # A tighter target means more, shorter collections.
    assert lo.gc_log.count > hi.gc_log.count
    assert lo.gc_log.avg_pause < hi.gc_log.avg_pause
