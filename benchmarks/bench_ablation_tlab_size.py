"""A3 — Ablation: fixed TLAB size sweep on xalan.

DESIGN.md calls out the TLAB space/time trade-off: larger buffers cut
refill synchronization but strand more eden space per thread (up to the
waste cap), pulling young collections forward. This sweep quantifies
both ends against HotSpot's adaptive sizing.
"""

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.heap.tlab import TLABConfig
from repro.units import KB, MB
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

SIZES = quick_or_full(
    [None, 64 * KB, 1 * MB, 16 * MB],
    [None, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB],
)
SEED = 1


def run_experiment():
    out = {}
    for size in SIZES:
        cfg = baseline_config(seed=SEED, tlab=TLABConfig(enabled=True, size=size))
        jvm = JVM(cfg)
        result = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=False)
        out[size] = (result, jvm.heap.tlabs.tlab_size, jvm.heap.tlabs.expected_waste)
    return out


def test_ablation_tlab_size(benchmark):
    runs = once(benchmark, run_experiment)
    rows = []
    for size, (result, effective, waste) in runs.items():
        rows.append((
            "adaptive" if size is None else f"{size / KB:g}K",
            f"{effective / KB:.0f}K",
            f"{waste / MB:.1f}M",
            result.gc_log.count,
            round(result.execution_time, 2),
        ))
    text = render_table(
        ["TLABSize", "effective", "eden waste", "#GCs", "exec (s)"],
        rows,
        title="Ablation A3 — TLAB size sweep, xalan (no system GC)",
    )
    emit("ablation_tlab_size", text)

    # Huge TLABs waste eden (waste cap) and never run fewer collections.
    biggest = runs[16 * MB]
    adaptive = runs[None]
    assert biggest[2] >= adaptive[2]
    assert biggest[0].gc_log.count >= adaptive[0].gc_log.count
