"""E8 — Figure 4: CMS and G1 pauses on the Cassandra stress test.

Both collectors serve the two-hour insert load (preceded by the commit-log
replay of the pre-loaded database, which is why the elapsed axis extends
past 7200 s in the paper's chart too). Paper shape: no minutes-long full
GCs; stop-the-world pauses grow over the run, exceeding 2 s and reaching
~3.5 s — not negligible for a latency-critical system.
"""

import numpy as np

from repro import GB, JVM, JVMConfig
from repro.analysis.pauses import pause_scatter
from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.report import render_series, render_table
from repro.cassandra import CassandraServer, stress_config

from common import emit, once

SEED = 3
DURATION = 7200.0
OPS = 1350.0


def run_experiment():
    out = {}
    for gc in ("CMS", "G1"):
        jvm = JVM(JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=SEED))
        server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
        out[gc] = jvm.run(server, duration=DURATION, ops_per_second=OPS)
    return out


def test_fig4_cassandra_pauses(benchmark):
    runs = once(benchmark, run_experiment)
    lines = ["Figure 4 — CMS and G1 pause scatter on Cassandra (x=s, y=s)"]
    rows = []
    for gc, r in runs.items():
        xs, ys = pause_scatter(r.gc_log)
        lines.append(render_series(xs, ys, label=f"  {gc}", max_points=16))
        d = r.gc_log.durations()
        rows.append((
            gc, len(d), r.gc_log.full_count,
            round(float(np.percentile(d, 50)), 2),
            round(float(d.max()), 2),
            round(r.execution_time, 0),
        ))
    lines.append(render_table(
        ["GC", "#pauses", "#full", "p50 (s)", "max (s)", "elapsed (s)"], rows))
    lines.append("")
    lines.append(scatter_plot(
        {gc: (r.gc_log.starts(), r.gc_log.durations()) for gc, r in runs.items()},
        title="Figure 4 — rendered",
        x_label="elapsed time (s)", y_label="pause (s)", height=14,
    ))
    emit("fig4_cassandra_pauses", "\n".join(lines))

    for gc, r in runs.items():
        # No concurrent-mode / to-space failure full GCs.
        assert r.gc_log.full_count == 0, gc
        # "Both of them reach pauses of more than 2 seconds."
        assert r.gc_log.max_pause > 2.0, gc
        # ...but stay far below ParallelOld's minutes.
        assert r.gc_log.max_pause < 20.0, gc
        # The elapsed time extends beyond the 2 h serving window (replay).
        assert r.execution_time > DURATION
        # Pauses do not shrink as the heap fills (the paper's scatter
        # trends upward; ours fluctuates around a stable-to-growing band).
        d = r.gc_log.durations()
        quarter = max(len(d) // 4, 1)
        assert d[-quarter:].mean() > 0.7 * d[:quarter].mean(), gc
    # G1's pause-target-driven young keeps its pauses below CMS's.
    assert runs["G1"].gc_log.max_pause < runs["CMS"].gc_log.max_pause
