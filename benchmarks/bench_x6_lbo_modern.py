"""X6 — LBO cost distillation over the modern Table-8 roster.

Extends the paper's closing qualitative comparison into the
fully-concurrent era using the Distilling-the-Real-Cost methodology
(see ``repro.analysis.lbo``): each collector's execution time over a
heap-size ladder is divided by an ideal no-GC baseline (EpsilonGC) and
the minimum overhead across heaps is its distilled cost.

Expected shape: ZGC and Shenandoah pay a bounded single-digit-to-low-
double-digit throughput tax for pause tails orders of magnitude below
ParallelOld's — P99.9 in the low milliseconds instead of hundreds.

The collector roster comes from the registry (``TABLE8_GC_NAMES``), so
a newly registered production collector joins this grid automatically;
the guard below fails the bench if one escapes every roster instead.
"""

from repro.analysis.lbo import LBOConfig, run_lbo_study
from repro.campaign import ResultStore
from repro.gc import ALL_GC_NAMES, GC_NAMES, TABLE8_GC_NAMES

from common import campaign_opts, emit, once, quick_or_full

HEAPS = quick_or_full(("8g", "16g"), ("4g", "8g", "16g", "32g"))
SEEDS = quick_or_full((1, 2), (1, 2, 3))
ITERATIONS = quick_or_full(4, 6)


def run_experiment():
    config = LBOConfig(benchmarks=("xalan",), gcs=tuple(TABLE8_GC_NAMES),
                       heaps=HEAPS, seeds=SEEDS, iterations=ITERATIONS)
    opts = campaign_opts()
    store = ResultStore(str(opts["store"])) if opts else None
    return run_lbo_study(config, store=store)


def test_x6_lbo_modern(benchmark):
    # Every production collector must sit in some bench roster: the
    # paper six run the figure grids, the Table-8 set runs here.
    assert set(ALL_GC_NAMES) <= set(GC_NAMES) | set(TABLE8_GC_NAMES)

    result = once(benchmark, run_experiment)
    emit("x6_lbo_modern", result.render())

    assert result.ranking() == sorted(
        result.ranking(), key=lambda g: (result.distillate(g).lbo is None,
                                         result.distillate(g).lbo or 0.0, g))
    po = result.distillate("ParallelOld")
    assert po.crashed_cells == 0
    for gc in ("ZGC", "ShenandoahGC"):
        d = result.distillate(gc)
        assert d.crashed_cells == 0
        # The headline Distilling result, asserted on pause statistics
        # because they are immune to the per-invocation run noise: the
        # concurrent collectors' tails sit orders of magnitude below
        # ParallelOld's.
        assert d.pause_percentiles["p99.9"] < po.pause_percentiles["p99.9"] / 10
        assert d.max_pause < po.max_pause / 10
        # ...and the distilled throughput cost stays bounded.
        assert d.lbo is not None and 0.0 <= d.lbo < 0.5
