"""A6 — Ablation: what does GC-thread placement buy on a hybrid part?

EXPERIMENTS.md X7 studies the energy/pause Pareto frontier over
{collector x placement} on the asym-hybrid machine (8 P-cores + 16
E-cores). This ablation isolates the placement axis for one collector:
pinning GC to the P-cores minimises the pause tail at the highest GC
power, pinning to the E-cores burns the fewest GC joules at the longest
tail, and the adaptive split (young on P, old/concurrent on E) sits
between them. The homogeneous run on the paper's server rides along as
the control: its placement column must be a pure no-op.
"""

from repro import GB, JVM, JVMConfig
from repro.analysis.report import render_table
from repro.energy.model import EnergyModel, UJ_PER_J
from repro.energy.placement import PLACEMENT_NAMES
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

SEED = 1
GC = "ParallelOldGC"


def run_one(placement, topology="asym-hybrid"):
    config = JVMConfig(gc=GC, heap=8 * GB, seed=SEED, topology=topology,
                       gc_placement=placement)
    jvm = JVM(config)
    result = jvm.run(get_benchmark("xalan"),
                     iterations=quick_or_full(4, 10), system_gc=False)
    assert not result.crashed
    return result, EnergyModel.for_config(config).account_run(result)


def run_experiment():
    runs = {p: run_one(p) for p in PLACEMENT_NAMES}
    runs["none (homogeneous)"] = run_one("", topology="paper-48core")
    runs["adaptive (homogeneous)"] = run_one("adaptive",
                                             topology="paper-48core")
    return runs


def test_ablation_energy_placement(benchmark):
    runs = once(benchmark, run_experiment)
    rows = []
    for name, (result, account) in runs.items():
        pauses = [p.duration for p in result.gc_log.pauses]
        rows.append((
            name,
            round(result.execution_time, 2),
            round(1e3 * max(pauses), 1) if pauses else "-",
            round(account.gc_uj / UJ_PER_J, 1),
            round(account.joules(), 1),
        ))
    text = render_table(
        ["placement", "exec (s)", "max pause (ms)", "GC J", "total J"],
        rows,
        title=f"Ablation A6 — GC placement on asym-hybrid, {GC} xalan",
    )
    emit("ablation_energy_placement", text)

    p_res, p_acct = runs["p-cores"]
    e_res, e_acct = runs["e-cores"]
    # The Pareto trade-off the X7 study (and the CI energy-smoke job)
    # pins: P-pinning buys the tail, E-pinning the energy.
    assert max(x.duration for x in p_res.gc_log.pauses) < \
        max(x.duration for x in e_res.gc_log.pauses)
    assert e_acct.gc_uj < p_acct.gc_uj

    # Placement on a homogeneous machine is an exact no-op.
    control, _ = runs["none (homogeneous)"]
    placed, _ = runs["adaptive (homogeneous)"]
    # Exact equality is the assertion: placement scales default to 1.0
    # and x * 1.0 is IEEE-exact, so not a single bit may move.
    assert placed.iteration_times == control.iteration_times
    assert [(p.start, p.duration, p.kind) for p in placed.gc_log.pauses] \
        == [(p.start, p.duration, p.kind) for p in control.gc_log.pauses]
