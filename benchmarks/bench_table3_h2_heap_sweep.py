"""E4 — Table 3: H2 under CMS across heap / young-generation sizes.

Regenerates the paper's statistics table — #pauses(full), average pause,
total pause, total execution time — for the same heap grid, and verifies
the two headline behaviours:

* the *young-generation anomaly*: for the 64 GB heap, CMS's average pause
  is longer with the 6 GB young generation than with larger ones (the
  paper: 1.33 s at 6 GB vs 0.36-0.55 s at 12-48 GB), while ParallelOld
  behaves "as expected";
* the tiny-heap rows run hundreds of collections, many of them full, and
  spend over half of the execution time paused.
"""

from repro import GB, JVM, JVMConfig, MB
from repro.analysis.pauses import pause_stats
from repro.analysis.report import render_table
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

ROWS = [
    (64 * GB, 6 * GB), (64 * GB, 12 * GB), (64 * GB, 24 * GB), (64 * GB, 48 * GB),
    (1 * GB, 200 * MB), (1 * GB, 100 * MB),
    (500 * MB, 200 * MB), (500 * MB, 100 * MB),
    (250 * MB, 200 * MB), (250 * MB, 100 * MB),
]
SEED = 2
ITERATIONS = quick_or_full(10, 10)


def label(heap, young):
    def f(n):
        return f"{n / GB:g}GB" if n >= 1 * GB else f"{n / MB:g}MB"

    return f"{f(heap)}-{f(young)}"


def run_experiment():
    out = {}
    for gc in ("ConcMarkSweepGC", "ParallelOldGC"):
        for heap, young in ROWS:
            jvm = JVM(JVMConfig(gc=gc, heap=heap, young=young, seed=SEED))
            result = jvm.run(get_benchmark("h2"), iterations=ITERATIONS,
                             system_gc=False)
            out[(gc, heap, young)] = (
                pause_stats(result.gc_log, result.execution_time), result
            )
    return out


def test_table3_h2_heap_sweep(benchmark):
    data = once(benchmark, run_experiment)
    lines = []
    for gc in ("ConcMarkSweepGC", "ParallelOldGC"):
        rows = []
        for heap, young in ROWS:
            stats, result = data[(gc, heap, young)]
            rows.append((label(heap, young),) + stats.row()
                        + (f"{100 * stats.pause_fraction:.0f}%",))
        lines.append(render_table(
            ["Heap-YoungGen", "#pauses(full)", "AVG pause (s)",
             "Total pause (s)", "Total exec (s)", "paused"],
            rows,
            title=f"Table 3 — H2 statistics, {gc}",
        ))
        lines.append("")
    emit("table3_h2_heap_sweep", "\n".join(lines))

    cms = {young: data[("ConcMarkSweepGC", 64 * GB, young)][0]
           for young in (6 * GB, 12 * GB, 24 * GB)}
    # The anomaly: smaller young generation -> longer average pause.
    assert cms[6 * GB].avg_pause > cms[24 * GB].avg_pause
    po = {young: data[("ParallelOldGC", 64 * GB, young)][0]
          for young in (6 * GB, 24 * GB)}
    # ParallelOld "behaved as expected": avg pause decreases with
    # decreasing young size.
    assert po[6 * GB].avg_pause < po[24 * GB].avg_pause
    # Tiny-heap rows: hundreds of pauses, > 50 % of time in GC.
    worst, _r = data[("ConcMarkSweepGC", 250 * MB, 200 * MB)]
    assert worst.pause_count > 100 and worst.full_count > 50
    assert worst.pause_fraction > 0.5
