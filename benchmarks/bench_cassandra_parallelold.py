"""E7 — §4.1: ParallelOld on Cassandra (server-side pauses).

Three runs, mirroring the paper:

1. **default configuration, 1 hour** of loading — no full GC, but young
   collections with peak pauses in the tens of seconds (paper: ~17 s);
2. **default configuration, 2 hours** — one full GC of minutes (paper:
   >160 s), young pauses up to ~25 s;
3. **stress configuration, 2 hours** (memtable/commitlog sized like the
   heap, pre-loaded database replayed at startup) — a full GC of
   "around 4 minutes".
"""

from repro import GB, JVM, JVMConfig
from repro.analysis.report import render_table
from repro.cassandra import CassandraServer, default_config, stress_config

from common import emit, once, quick_or_full

SEED = 3
OPS_DEFAULT = 2600.0
OPS_STRESS = 1350.0
HOUR = 3600.0


def run_one(cassandra_config, duration, ops):
    jvm = JVM(JVMConfig(gc="ParallelOld", heap=64 * GB, young=12 * GB, seed=SEED))
    server = CassandraServer(cassandra_config)
    result = jvm.run(server, duration=duration, ops_per_second=ops)
    return result


def run_experiment():
    return {
        "default-1h": run_one(default_config(64 * GB), HOUR, OPS_DEFAULT),
        "default-2h": run_one(default_config(64 * GB), 2 * HOUR, OPS_DEFAULT),
        "stress-2h": run_one(
            stress_config(64 * GB, preload_records=8_000_000), 2 * HOUR, OPS_STRESS
        ),
    }


def test_cassandra_parallelold(benchmark):
    runs = once(benchmark, run_experiment)
    rows = []
    for name, r in runs.items():
        young = [p.duration for p in r.gc_log.pauses if not p.is_full]
        fulls = [p.duration for p in r.gc_log.pauses if p.is_full]
        rows.append((
            name,
            r.gc_log.count,
            len(fulls),
            round(max(young), 1) if young else 0,
            round(max(fulls), 1) if fulls else "-",
            round(r.execution_time, 0),
        ))
    text = render_table(
        ["run", "#pauses", "#full", "young max (s)", "full max (s)", "exec (s)"],
        rows,
        title="§4.1 — ParallelOld on Cassandra (server side)",
    )
    emit("cassandra_parallelold", text)

    one_hour, two_hours, stress = (
        runs["default-1h"], runs["default-2h"], runs["stress-2h"]
    )
    # "The shorter test case ends up with no full GC; nonetheless the
    # collection of the Young Generation reaches a peak pause of around
    # 17 seconds."
    assert one_hour.gc_log.full_count == 0
    young_1h = max(p.duration for p in one_hour.gc_log.pauses)
    assert young_1h > 8.0
    # "[2 hours] resulted in a full GC that stopped the application
    # threads for more than 160 seconds" (we accept minutes-long).
    assert two_hours.gc_log.full_count >= 1
    assert two_hours.gc_log.max_pause > 100.0
    # "This experiment results in a full GC lasting around 4 minutes."
    assert stress.gc_log.full_count >= 1
    stress_full = max(p.duration for p in stress.gc_log.pauses if p.is_full)
    assert 120.0 < stress_full < 600.0
