"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures: it
runs the experiment inside the ``benchmark`` fixture, prints the rows or
series the paper reports, and writes the same text into
``benchmarks/out/<name>.txt`` so artefacts survive pytest's output
capturing.

Set ``REPRO_FULL=1`` for the full-fidelity grids (paper scale); the
default *quick* mode shrinks repetition counts so the whole harness runs
in a few minutes.
"""

from __future__ import annotations

import os
import pathlib

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0", "false")

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def quick_or_full(quick, full):
    """Pick a parameter by mode."""
    return full if FULL else quick


def campaign_opts():
    """Opt-in campaign backend for grid-shaped benches.

    Set ``REPRO_CAMPAIGN=1`` to run grid benches through
    :func:`repro.campaign.run_campaign` instead of in-process serial
    loops: cells fan out across cores (``REPRO_CAMPAIGN_WORKERS`` sizes
    the pool, default one per core) and results are cached
    content-addressed under ``benchmarks/out/campaign-store``
    (``REPRO_CAMPAIGN_STORE`` overrides the location — the perf pipeline
    points it at a throwaway directory so wall-clock numbers are never
    cache-skewed), so re-running a bench — or sharing cells between
    quick and full grids — skips completed work. Results are
    bit-identical to the serial path.

    Returns ``run_campaign`` keyword arguments, or ``None`` when the
    backend is not enabled.
    """
    if os.environ.get("REPRO_CAMPAIGN", "") in ("", "0", "false"):
        return None
    workers = os.environ.get("REPRO_CAMPAIGN_WORKERS", "")
    store = os.environ.get("REPRO_CAMPAIGN_STORE", "") or OUT_DIR / "campaign-store"
    return {
        "store": store,
        "executor": "process",
        "workers": int(workers) if workers else None,
    }


def emit(name: str, text: str) -> str:
    """Print *text* and persist it to ``benchmarks/out/<name>.txt``."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    header = f"== {name} ({'full' if FULL else 'quick'} mode) =="
    body = f"{header}\n{text}\n"
    path.write_text(body)
    print("\n" + body)
    return str(path)


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
