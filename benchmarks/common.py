"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures: it
runs the experiment inside the ``benchmark`` fixture, prints the rows or
series the paper reports, and writes the same text into
``benchmarks/out/<name>.txt`` so artefacts survive pytest's output
capturing.

Set ``REPRO_FULL=1`` for the full-fidelity grids (paper scale); the
default *quick* mode shrinks repetition counts so the whole harness runs
in a few minutes.
"""

from __future__ import annotations

import os
import pathlib

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0", "false")

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def quick_or_full(quick, full):
    """Pick a parameter by mode."""
    return full if FULL else quick


def emit(name: str, text: str) -> str:
    """Print *text* and persist it to ``benchmarks/out/<name>.txt``."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    header = f"== {name} ({'full' if FULL else 'quick'} mode) =="
    body = f"{header}\n{text}\n"
    path.write_text(body)
    print("\n" + body)
    return str(path)


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
