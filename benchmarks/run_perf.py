#!/usr/bin/env python
"""CI perf pipeline: run the pinned bench subset and the telemetry
smoke checks, then write one machine-readable report (``BENCH_pr.json``).

The report combines two kinds of numbers:

* **wall-clock** per bench file, measured by pytest-benchmark in a
  subprocess (this script itself never reads a clock — the simulator
  tree is linted against wall-clock APIs, see ``repro.lint``);
* **simulated** pause percentiles from a traced ``repro-trace record``
  run — these are deterministic, so the regression checker can compare
  them exactly across machines.

The traced run is performed twice with the same seed and the two trace
files are compared byte-for-byte; the Chrome export is validated against
the trace_event schema. Either failing marks the report unhealthy and
the script exits non-zero.

Usage::

    python benchmarks/run_perf.py --output BENCH_pr.json
    python benchmarks/check_regression.py BENCH_pr.json
"""

import argparse
import filecmp
import json
import os
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Report format version; bump on incompatible change.
BENCH_SCHEMA_VERSION = 1

#: The pinned CI subset: one figure-1 run, the figure-3 ranking grid
#: (through the campaign backend, fresh store each time so wall-clock
#: is not cache-skewed), and the Tables 5-7 latency statistics.
BENCHES = (
    ("fig1_xalan_pauses", "bench_fig1_xalan_pauses.py", {}),
    ("fig3_ranking", "bench_fig3_ranking.py", {"REPRO_CAMPAIGN": "1"}),
    ("tables567_latency_stats", "bench_tables567_latency_stats.py", {}),
)

#: Pinned traced runs: (label, repro-trace record argv tail).
TRACED = (
    ("xalan-CMS-seed1",
     ["xalan", "-n", "10", "--gc", "CMS", "--seed", "1"]),
    ("xalan-G1-seed1",
     ["xalan", "-n", "10", "--gc", "G1", "--seed", "1"]),
    # The fully-concurrent collectors: same byte-identity bar, and their
    # pinned pause percentiles document the sub-10ms tail in baseline.json.
    ("xalan-ZGC-seed1",
     ["xalan", "-n", "10", "--gc", "ZGC", "--seed", "1"]),
    ("xalan-Shenandoah-seed1",
     ["xalan", "-n", "10", "--gc", "Shenandoah", "--seed", "1"]),
)

_PAUSE_QS = (50.0, 90.0, 99.0, 100.0)


def _bench_env(extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def run_benches(tmp: pathlib.Path) -> dict:
    """Run each bench file under pytest-benchmark; return wall-clock stats."""
    out = {}
    for label, fname, extra_env in BENCHES:
        json_path = tmp / f"{label}.pytest-benchmark.json"
        env = _bench_env(extra_env)
        if "REPRO_CAMPAIGN" in extra_env:
            # Fresh store per invocation: cache hits would zero the timing.
            env["REPRO_CAMPAIGN_STORE"] = str(tmp / f"{label}-store")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(ROOT / "benchmarks" / fname),
             "--benchmark-json", str(json_path), "-q"],
            cwd=str(ROOT), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout)
            raise SystemExit(f"bench {label} failed (exit {proc.returncode})")
        doc = json.loads(json_path.read_text())
        total = sum(b["stats"]["total"] for b in doc["benchmarks"])
        out[label] = {"wall_s": round(total, 4)}
        print(f"bench {label}: {total:.2f}s wall")
    return out


def run_calibration(tmp: pathlib.Path) -> dict:
    """Measure this runner's speed on the pinned spin benchmark.

    The spin result calibrates the wall-clock regression gate: a runner
    half as fast as the baseline's shows spin_s twice as large, and
    ``check_regression.py`` divides every bench ratio by that factor.
    """
    json_path = tmp / "spin.pytest-benchmark.json"
    proc = subprocess.run(
        [sys.executable, "-m", "pytest",
         str(ROOT / "benchmarks" / "bench_spin_calibration.py"),
         "--benchmark-json", str(json_path), "-q"],
        cwd=str(ROOT), env=_bench_env({}),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        raise SystemExit(f"calibration bench failed (exit {proc.returncode})")
    doc = json.loads(json_path.read_text())
    # Per-round mean: independent of pytest-benchmark's round calibration.
    spin = doc["benchmarks"][0]["stats"]["mean"]
    print(f"calibration: spin {spin * 1e3:.3f}ms/round")
    return {"spin_s": spin}


def run_traced(tmp: pathlib.Path) -> dict:
    """Record each pinned traced run twice; check determinism + export."""
    from repro.telemetry import read_trace, to_chrome, validate_chrome
    from repro.telemetry.cli import main as trace_main

    out = {}
    for label, argv in TRACED:
        a = tmp / f"{label}.a.trace.jsonl"
        b = tmp / f"{label}.b.trace.jsonl"
        chrome = tmp / f"{label}.chrome.json"
        for path in (a, b):
            rc = trace_main(["record", *argv, "-o", str(path)])
            if rc != 0:
                raise SystemExit(f"repro-trace record failed for {label} (exit {rc})")
        identical = filecmp.cmp(str(a), str(b), shallow=False)
        rc = trace_main(["export", str(a), "--format", "chrome", "-o", str(chrome)])
        if rc != 0:
            raise SystemExit(f"repro-trace export failed for {label} (exit {rc})")
        problems = validate_chrome(json.loads(chrome.read_text()))
        trace = read_trace(str(a))
        hist = trace.pause_hist
        out[label] = {
            "events": trace.summary.get("events_emitted", len(trace.events)),
            "dropped": trace.dropped,
            "byte_identical": identical,
            "chrome_valid": not problems,
            "chrome_events": len(to_chrome(trace)["traceEvents"]),
            "pauses": hist.total_count,
            "pause_ms": {f"p{q:g}": round(hist.percentile(q) * 1e3, 6)
                         for q in _PAUSE_QS},
        }
        status = "ok" if identical and not problems else "UNHEALTHY"
        print(f"trace {label}: {out[label]['events']} events, "
              f"p99 pause {out[label]['pause_ms']['p99']}ms [{status}]")
        for p in problems:
            print(f"  chrome-validate: {p}")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default="BENCH_pr.json",
                        help="report path (default: BENCH_pr.json)")
    parser.add_argument("--skip-benches", action="store_true",
                        help="only run the telemetry smoke checks")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(ROOT / "src"))
    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmpdir:
        tmp = pathlib.Path(tmpdir)
        report = {
            "schema": BENCH_SCHEMA_VERSION,
            "calibration": {} if args.skip_benches else run_calibration(tmp),
            "benches": {} if args.skip_benches else run_benches(tmp),
            "traces": run_traced(tmp),
        }
    healthy = all(t["byte_identical"] and t["chrome_valid"] and t["dropped"] == 0
                  for t in report["traces"].values())
    report["healthy"] = healthy
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report written to {args.output}")
    if not healthy:
        print("telemetry smoke checks FAILED (see 'traces' in the report)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
