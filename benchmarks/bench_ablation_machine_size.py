"""A5 — Ablation: does the machine size change the paper's conclusions?

The paper's results come from one 48-core NUMA box. This ablation reruns
the headline xalan comparison on three machines — an 8-core single-node
desktop, a 24-core two-socket server, and the paper's 48-core four-socket
box — to see which findings are machine-dependent.

Expected shape: G1's forced-full-GC penalty (a structural JDK 8 fact) is
machine-independent. Less obviously, the serial-vs-parallel gap *widens*
on the small box: 8 GC threads on a single NUMA node parallelize almost
ideally, whereas 33 threads spread over 8 NUMA nodes waste most of their
parallelism on remote accesses (Gidra et al.'s point — NUMA, not core
count, is what breaks GC scaling).
"""

from repro import JVM, JVMConfig, MachineTopology
from repro.analysis.report import render_table
from repro.units import GB
from repro.workloads.dacapo import get_benchmark

from common import emit, once, quick_or_full

TOPOLOGIES = {
    "8-core desktop": MachineTopology(
        name="desktop", sockets=1, numa_nodes_per_socket=1,
        cores_per_numa_node=8, ram_bytes=32 * GB,
    ),
    "24-core 2-socket": MachineTopology(
        name="mid", sockets=2, numa_nodes_per_socket=2,
        cores_per_numa_node=6, ram_bytes=64 * GB,
    ),
    "48-core 4-socket (paper)": MachineTopology(
        name="paper-48core", sockets=4, numa_nodes_per_socket=2,
        cores_per_numa_node=6, ram_bytes=64 * GB,
    ),
}
GCS = ("SerialGC", "ParallelOldGC", "G1GC")
SEEDS = quick_or_full((1, 2, 3), (1, 2, 3, 4, 5))


def median_run(topology, gc):
    import numpy as np

    execs, maxima = [], []
    for seed in SEEDS:
        cfg = JVMConfig(gc=gc, heap=16 * GB, young=5.6 * GB,
                        topology=topology, seed=seed)
        r = JVM(cfg).run(get_benchmark("xalan"), iterations=10, system_gc=True)
        execs.append(r.execution_time)
        maxima.append(r.gc_log.max_pause)
    return float(np.median(execs)), float(np.median(maxima))


def run_experiment():
    return {
        (machine, gc): median_run(topology, gc)
        for machine, topology in TOPOLOGIES.items()
        for gc in GCS
    }


def test_ablation_machine_size(benchmark):
    results = once(benchmark, run_experiment)
    rows = []
    for machine in TOPOLOGIES:
        for gc in GCS:
            exec_t, max_p = results[(machine, gc)]
            rows.append((machine, gc, round(exec_t, 2), round(max_p, 3)))
    text = render_table(
        ["machine", "GC", "xalan exec (s)", "max pause (s)"],
        rows,
        title="Ablation A5 — machine-size sweep (xalan, System.gc() on)",
    )
    emit("ablation_machine_size", text)

    # G1's structural penalty holds on every machine.
    for machine in TOPOLOGIES:
        g1 = results[(machine, "G1GC")][0]
        po = results[(machine, "ParallelOldGC")][0]
        assert g1 > 1.1 * po, machine
    # Parallel collection is *relatively* stronger on the single-NUMA-node
    # box: Serial's handicap vs ParallelOld is larger at 8 cores than at
    # 48 (where NUMA eats the parallel speedup).
    ratio8 = (results[("8-core desktop", "SerialGC")][0]
              / results[("8-core desktop", "ParallelOldGC")][0])
    ratio48 = (results[("48-core 4-socket (paper)", "SerialGC")][0]
               / results[("48-core 4-socket (paper)", "ParallelOldGC")][0])
    assert ratio8 > ratio48
