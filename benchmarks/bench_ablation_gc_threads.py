"""A4 — Ablation: GC thread-count scaling (Gidra-style).

The paper cites Gidra et al.'s finding that the HotSpot collectors do not
scale with the number of GC threads on this class of NUMA machine. This
sweep measures a fixed ParallelOld young collection under 1-48 GC
threads: speedup saturates around a handful of threads and decays once
the pool spans NUMA nodes.
"""

from repro.gc import create_collector
from repro.analysis.report import render_table
from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.machine.costs import CostModel
from repro.seeding import rng_for
from repro.units import GB, MB

from common import emit, once, quick_or_full

THREADS = quick_or_full((1, 2, 4, 8, 16, 33, 48), (1, 2, 4, 6, 8, 12, 16, 24, 33, 48))


def young_pause(n_threads: int) -> float:
    heap = GenerationalHeap(
        HeapConfig(heap_bytes=16 * GB, young_bytes=5.6 * GB),
        n_mutator_threads=48,
    )
    collector = create_collector(
        "ParallelOld", heap, CostModel(),
        gc_threads=n_threads, rng=rng_for("ablation-gc-threads", n_threads),
    )
    collector.noise = 0.0
    heap.allocate(0.0, 400 * MB, None, pinned=True)  # fixed survivor volume
    outcome = collector.allocation_failure(1.0)
    return outcome.pauses[0].duration


def run_experiment():
    return {n: young_pause(n) for n in THREADS}


def test_ablation_gc_threads(benchmark):
    pauses = once(benchmark, run_experiment)
    base = pauses[1]
    rows = [(n, round(t, 3), round(base / t, 2)) for n, t in pauses.items()]
    text = render_table(
        ["GC threads", "young pause (s)", "speedup vs 1 thread"],
        rows,
        title="Ablation A4 — ParallelOld young-GC thread scaling (400 MB survivors)",
    )
    emit("ablation_gc_threads", text)

    speedups = {n: base / t for n, t in pauses.items()}
    # Parallelism helps at first...
    assert speedups[8] > speedups[2] > 0.9
    # ...but saturates far below linear (Gidra et al.: GCs do not scale).
    assert speedups[48] < 4.0
    # and 48 threads are no better than 16 (NUMA penalty).
    assert speedups[48] <= speedups[16] * 1.1
