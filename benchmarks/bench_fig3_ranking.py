"""E6 — Figure 3: GC ranking by the number of experiments won.

An *experiment* is (benchmark, heap size, young size); the GC with the
shortest total execution time wins. The paper varies the heap from the
16 GB baseline up to the machine's 64 GB and the young generation from
the baseline up to the heap, with the system GC enabled (a) and
disabled (b).

Paper shapes: with System.gc() (a), G1 wins **zero** experiments (no bar)
and ParallelOld contributes >20 % of wins; without (b), G1 appears but
stays last and ParallelOld leads at almost 30 %.
"""

from repro import GB
from repro.analysis.ranking import rank_by_wins
from repro.analysis.report import render_table
from repro.campaign import CampaignSpec, run_campaign
from repro.gc import GC_NAMES
from repro.studies import GridSpec, run_grid
from repro.workloads.dacapo import STABLE_SUBSET

from common import campaign_opts, emit, once, quick_or_full

#: (heap, young) grid: baseline -> machine RAM, young -> heap.
GRID = quick_or_full(
    [(16 * GB, 5.6 * GB), (32 * GB, 5.6 * GB), (64 * GB, 5.6 * GB),
     (64 * GB, 12 * GB), (64 * GB, 24 * GB)],
    [(16 * GB, 5.6 * GB), (32 * GB, 5.6 * GB), (32 * GB, 16 * GB),
     (64 * GB, 5.6 * GB), (64 * GB, 12 * GB), (64 * GB, 24 * GB),
     (64 * GB, 48 * GB)],
)
ITERATIONS = quick_or_full(10, 10)
SEED = 0


def run_experiment():
    # The (heap, young) pairs are not a full product, so each pair is its
    # own single-point GridSpec; one campaign per System.gc() setting.
    # With REPRO_CAMPAIGN=1 cells fan out across cores and cache on disk
    # (results are bit-identical to the serial path either way).
    results = {}
    for system_gc in (True, False):
        grids = [
            GridSpec(benchmarks=STABLE_SUBSET, gcs=GC_NAMES, heaps=[heap],
                     youngs=[young], seeds=[SEED], iterations=ITERATIONS,
                     system_gc=system_gc)
            for heap, young in GRID
        ]
        opts = campaign_opts()
        if opts is None:
            grid_results = [run_grid(g) for g in grids]
        else:
            label = "sysgc" if system_gc else "nosysgc"
            campaign = run_campaign(CampaignSpec(f"fig3-{label}", grids), **opts)
            grid_results = campaign.grids
        experiments = {}
        for grid in grid_results:
            for key, run in grid.runs.items():
                if run.crashed:
                    continue
                exp = experiments.setdefault((key.benchmark, key.heap, key.young), {})
                exp[key.gc] = run.execution_time
        results[system_gc] = rank_by_wins(experiments)
    return results


def test_fig3_ranking(benchmark):
    results = once(benchmark, run_experiment)
    lines = []
    for system_gc in (True, False):
        label = "(a) System GC" if system_gc else "(b) No System GC"
        ranking = results[system_gc]
        lines.append(f"Figure 3{label} — % of experiments won "
                     f"({ranking.total_experiments} experiments)")
        lines.append(render_table(
            ["GC", "% of experiments"],
            [(gc, round(pct, 1)) for gc, pct in ranking.ordered()],
        ))
        lines.append("")
    emit("fig3_ranking", "\n".join(lines))

    with_sysgc = results[True]
    without = results[False]
    # (a) G1 wins nothing when full GCs are forced.
    assert with_sysgc.percentage("G1GC") == 0.0
    # ParallelOld performs well in both cases (paper: >20 % / ~30 %).
    assert with_sysgc.percentage("ParallelOldGC") >= 20.0
    assert without.percentage("ParallelOldGC") >= 20.0
    # Several non-G1 collectors win experiments (five bars in the paper).
    assert sum(1 for _gc, pct in with_sysgc.ordered() if pct > 0) >= 3
    assert sum(1 for _gc, pct in without.ordered() if pct > 0) >= 5
    # (b) G1 may win something but stays at the bottom.
    g1_pct = without.percentage("G1GC")
    assert all(g1_pct <= without.percentage(gc) for gc in GC_NAMES)
