"""X3 — Extension: GC pauses vs. the cluster failure detector.

Quantifies the paper's closing warning — "in a distributed system, even a
lag of a few seconds might result in the current node being considered
down and the initiation of a cumbersome synchronization protocol" — by
running a 3-node simulated Cassandra cluster (independent replicas) under
each collector and overlaying the gossip failure detector.

Expected shape: ParallelOld's tens-of-seconds young pauses (and its
minutes-long full GC) get nodes convicted repeatedly and generate large
hinted-handoff backlogs; CMS convicts occasionally (its worst pauses
cross the phi threshold); G1 stays near the threshold; the HTM collector
never convicts.
"""

from repro.analysis.report import render_table
from repro.cassandra import ClusterConfig, run_cluster_study
from repro.units import MB

from common import emit, once, quick_or_full

COLLECTORS = ("ParallelOld", "CMS", "G1", "HTM")
DURATION = quick_or_full(3600.0, 7200.0)
CLUSTER = ClusterConfig(n_nodes=3)


def run_experiment():
    return {
        gc: run_cluster_study(gc, cluster=CLUSTER, duration=DURATION, seed=3)
        for gc in COLLECTORS
    }


def test_extension_cluster(benchmark):
    results = once(benchmark, run_experiment)
    rows = []
    for gc, res in results.items():
        rows.append((
            gc,
            len(res.down_events),
            round(res.total_unavailable_seconds, 1),
            f"{100 * res.availability(DURATION):.3f}%",
            round(res.hinted_handoff_bytes / MB, 1),
        ))
    text = render_table(
        ["GC", "DOWN convictions", "node-down (s)", "availability",
         "hinted handoff (MB)"],
        rows,
        title=f"3-node cluster, {DURATION / 3600:.0f} h stress load, "
              f"phi timeout {CLUSTER.failure_timeout:.0f}s",
    )
    emit("extension_cluster", text)

    po, cms, g1, htm = (results[gc] for gc in COLLECTORS)
    # ParallelOld: the paper's warning realized.
    assert len(po.down_events) > 10
    assert po.availability(DURATION) < 0.99
    assert po.hinted_handoff_bytes > 10 * MB
    # CMS also crosses the threshold, but its convictions are short young
    # pauses. Once ParallelOld's minutes-long full GC lands (the 2 h full
    # run), its downtime dwarfs CMS's.
    assert cms.total_unavailable_seconds <= 1.05 * po.total_unavailable_seconds
    po_had_full_gc = any(
        p.is_full for r in po.node_results for p in r.gc_log.pauses
    )
    if po_had_full_gc:
        assert cms.total_unavailable_seconds < 0.5 * po.total_unavailable_seconds
    # G1's pause-target keeps it at or under the threshold; HTM never
    # comes close.
    assert len(g1.down_events) <= len(cms.down_events)
    assert len(htm.down_events) == 0
