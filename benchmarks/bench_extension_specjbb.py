"""X2 — Extension: SPECjbb-style throughput ranking of the collectors.

The paper's class of study is usually run on DaCapo *and* SPECjbb-family
workloads; this bench adds the SPECjbb lens: a closed-loop, CPU-bound
transaction mix where every GC pause and concurrent steal is lost
throughput. It ranks all six stock collectors plus the HTM extension by
SPECjbb score (mean BOPS at cores..2xcores warehouses) and reports the
GC time absorbed at peak load.
"""

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.gc import GC_NAMES
from repro.workloads.specjbb import SPECjbbWorkload

from common import emit, once, quick_or_full

COLLECTORS = list(GC_NAMES) + ["HTMGC"]
MEASURE = quick_or_full(15.0, 30.0)
WAREHOUSES = quick_or_full([1, 24, 48, 96], [1, 2, 12, 24, 48, 72, 96])


def run_experiment():
    out = {}
    for gc in COLLECTORS:
        jvm = JVM(baseline_config(gc=gc, seed=5))
        result = jvm.run(SPECjbbWorkload(), warehouses=WAREHOUSES,
                         measurement_seconds=MEASURE)
        out[gc] = result.extras
    return out


def test_extension_specjbb(benchmark):
    results = once(benchmark, run_experiment)
    rows = []
    for gc, extras in sorted(results.items(), key=lambda kv: -kv[1]["score"]):
        peak = max(extras["points"], key=lambda p: p.bops)
        rows.append((
            gc,
            round(extras["score"]),
            round(peak.bops),
            peak.warehouses,
            f"{100 * peak.gc_pause_seconds / peak.elapsed:.1f}%",
        ))
    text = render_table(
        ["GC", "score (BOPS)", "peak BOPS", "peak warehouses", "GC time at peak"],
        rows,
        title="SPECjbb-style collector ranking (paper-class extension)",
    )
    emit("extension_specjbb", text)

    scores = {gc: results[gc]["score"] for gc in COLLECTORS}
    # The throughput collector family leads a throughput benchmark.
    assert scores["ParallelOldGC"] > scores["SerialGC"]
    # Every collector scales past a single warehouse.
    for gc, extras in results.items():
        points = {p.warehouses: p.bops for p in extras["points"]}
        assert points[48] > 5 * points[1], gc
