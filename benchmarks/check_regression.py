#!/usr/bin/env python
"""Fail CI when the bench subset regresses against the committed baseline.

Compares a ``BENCH_pr.json`` report (from ``benchmarks/run_perf.py``)
against ``benchmarks/baseline.json``:

* **wall-clock** — each bench may be at most ``--threshold`` (default
  25%) slower than the baseline. Wall times are machine-dependent, so
  the committed baseline must come from the same class of machine as CI
  (regenerate with ``--update`` when the runner or the workload grid
  changes).
* **simulated pause percentiles** — the simulator is deterministic, so
  these must match the baseline *exactly*, on any machine. A mismatch
  means behaviour changed; it is reported as a warning by default
  (``--strict-sim`` turns it into a failure) because intentional model
  changes also move these numbers — update the baseline alongside such
  a change.

Exit status: 0 ok, 1 regression (or sim drift under ``--strict-sim``),
2 usage/baseline errors.
"""

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"
DEFAULT_THRESHOLD = 0.25


def _load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _calibration_scale(current: dict, baseline: dict):
    """Runner-speed factor from the pinned spin benchmark.

    Returns ``cur_spin / base_spin`` (>1 means this runner is slower than
    the baseline's recorder), or ``None`` when either report predates the
    calibration field. Wall ratios are divided by this before the
    threshold check, so the gate measures the *simulator*, not the
    runner lottery.
    """
    cur = current.get("calibration", {}).get("spin_s")
    base = baseline.get("calibration", {}).get("spin_s")
    if not cur or not base:
        return None
    return cur / base


def compare(current: dict, baseline: dict, threshold: float):
    """Return (regressions, sim_drift, lines) comparing two reports."""
    regressions, drift, lines = [], [], []
    scale = _calibration_scale(current, baseline)
    if scale is not None:
        lines.append(f"  runner calibration: spin ratio {scale:.3f} "
                     "(wall ratios normalized by this)")
    base_benches = baseline.get("benches", {})
    for name, cur in sorted(current.get("benches", {}).items()):
        base = base_benches.get(name)
        if base is None:
            lines.append(f"  {name}: {cur['wall_s']:.2f}s (new bench, no baseline)")
            continue
        ratio = cur["wall_s"] / base["wall_s"] if base["wall_s"] else float("inf")
        if scale:
            ratio /= scale
        delta = (ratio - 1.0) * 100.0
        flag = ""
        if ratio > 1.0 + threshold:
            regressions.append(name)
            flag = "  << REGRESSION"
        suffix = " calibrated" if scale else ""
        lines.append(f"  {name}: {cur['wall_s']:.2f}s vs {base['wall_s']:.2f}s "
                     f"baseline ({delta:+.1f}%{suffix}){flag}")
    for name in sorted(set(base_benches) - set(current.get("benches", {}))):
        lines.append(f"  {name}: missing from current report (baseline has it)")

    base_traces = baseline.get("traces", {})
    for label, cur in sorted(current.get("traces", {}).items()):
        base = base_traces.get(label)
        if base is None:
            continue
        for key in ("pause_ms", "pauses", "events"):
            if cur.get(key) != base.get(key):
                drift.append(f"{label}.{key}: {base.get(key)} -> {cur.get(key)}")
    return regressions, drift, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_pr.json from run_perf.py")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline (default: benchmarks/baseline.json)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max allowed wall-clock slowdown fraction (default 0.25)")
    parser.add_argument("--strict-sim", action="store_true",
                        help="fail (not warn) when simulated percentiles drift")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current report and exit")
    args = parser.parse_args(argv)

    current = _load(args.current)
    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated from {args.current} -> {args.baseline}")
        return 0

    baseline = _load(args.baseline)
    regressions, drift, lines = compare(current, baseline, args.threshold)
    print(f"wall-clock vs baseline (threshold +{args.threshold * 100:.0f}%):")
    for line in lines:
        print(line)
    if drift:
        kind = "error" if args.strict_sim else "warning"
        print(f"{kind}: simulated results drifted from baseline "
              "(model change? regenerate with --update):")
        for d in drift:
            print(f"  {d}")
    if not current.get("healthy", True):
        print("error: current report is unhealthy (telemetry smoke checks failed)",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"error: wall-clock regression in: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    if drift and args.strict_sim:
        return 1
    print("ok: no wall-clock regression"
          + ("" if not drift else " (sim drift warnings above)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
