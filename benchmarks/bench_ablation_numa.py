"""A1 — Ablation: how much of the GC cost comes from NUMA effects?

DESIGN.md models two NUMA terms after Gidra et al.: the per-node
efficiency penalty on parallel phases (``numa_gamma``) and the
heap-spread locality drag (``locality_k``). This ablation switches them
off and reruns the critical ParallelOld Cassandra full GC: without the
NUMA terms, the "4-minute" full GC collapses to tens of seconds —
i.e. the paper's headline pause is primarily a NUMA/locality phenomenon,
not a live-set-size one.
"""

import dataclasses

from repro import GB, JVM, JVMConfig
from repro.analysis.report import render_table
from repro.cassandra import CassandraServer, stress_config

from common import emit, once

SEED = 3


def run_one(numa_on: bool):
    jvm = JVM(JVMConfig(gc="ParallelOld", heap=64 * GB, young=12 * GB, seed=SEED))
    if not numa_on:
        jvm.costs = dataclasses.replace(jvm.costs, numa_gamma=0.0, locality_k=0.0)
        jvm.collector.costs = jvm.costs
        jvm.world.costs = jvm.costs
    server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
    return jvm.run(server, duration=7200.0, ops_per_second=1350.0)


def run_experiment():
    return {"numa": run_one(True), "no-numa": run_one(False)}


def test_ablation_numa(benchmark):
    runs = once(benchmark, run_experiment)
    rows = []
    for name, r in runs.items():
        fulls = [p.duration for p in r.gc_log.pauses if p.is_full]
        youngs = [p.duration for p in r.gc_log.pauses if not p.is_full]
        rows.append((
            name,
            round(max(fulls), 1) if fulls else "-",
            round(max(youngs), 1) if youngs else "-",
            round(r.gc_log.total_pause, 1),
        ))
    text = render_table(
        ["model", "max full GC (s)", "max young (s)", "total pause (s)"],
        rows,
        title="Ablation A1 — NUMA terms on/off, ParallelOld Cassandra stress",
    )
    emit("ablation_numa", text)

    with_numa = runs["numa"].gc_log
    without = runs["no-numa"].gc_log
    # The NUMA terms are responsible for the bulk of the pause cost.
    assert with_numa.total_pause > 2.0 * without.total_pause
    if with_numa.full_count and without.full_count:
        assert with_numa.max_pause > 2.0 * without.max_pause
