#!/usr/bin/env python3
"""Client-side latency study (§4.2): which GC should a latency SLA pick?

Runs the paper's custom 50 % read / 50 % update YCSB workload against the
simulated Cassandra node under the three main collectors, then reports
the latency distribution, how much of the high-latency tail is
GC-caused, and which collector satisfies a p99.9 SLA.

Run:  python examples/client_latency.py [--duration SECONDS]
"""

import sys

import numpy as np

from repro import GB, JVMConfig
from repro.analysis.latency import gc_overlap_fraction, latency_band_stats
from repro.analysis.report import render_table
from repro.cassandra import default_config
from repro.ycsb import WORKLOAD_A_LIKE, YCSBClient

SLA_MS = 500.0


def main() -> None:
    duration = 7200.0
    if "--duration" in sys.argv:
        duration = float(sys.argv[sys.argv.index("--duration") + 1])

    rows = []
    for gc in ("ParallelOld", "CMS", "G1"):
        client = YCSBClient(WORKLOAD_A_LIKE, seed=11)
        trace = client.run(
            JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=11),
            default_config(64 * GB),
            duration=duration,
        )
        reads = trace.reads.latencies_ms
        overlap = gc_overlap_fraction(
            trace.op_times, trace.latencies_ms, trace.pause_intervals
        )
        p999 = float(np.percentile(reads, 99.9))
        rows.append((
            gc,
            len(trace.latencies_ms),
            round(float(reads.mean()), 2),
            round(float(np.percentile(reads, 99)), 1),
            round(p999, 1),
            round(float(reads.max()), 0),
            f"{100 * overlap:.0f}%",
            "yes" if p999 <= SLA_MS else "no",
        ))
    print(render_table(
        ["GC", "#ops", "READ avg (ms)", "p99 (ms)", "p99.9 (ms)", "max (ms)",
         "tail GC-caused", f"p99.9 <= {SLA_MS:.0f} ms"],
        rows,
        title="YCSB 50/50 read-update against Cassandra (per collector)",
    ))
    print("\nEvery latency peak coincides with a server GC pause (the")
    print("paper's Figure 5 observation); the collector choice is therefore")
    print("a choice of pause profile, not of service time.")

    # Full band statistics for the winner, like the paper's Tables 5-7.
    client = YCSBClient(WORKLOAD_A_LIKE, seed=11)
    trace = client.run(
        JVMConfig(gc="G1", heap=64 * GB, young=12 * GB, seed=11),
        default_config(64 * GB), duration=duration,
    )
    bands = latency_band_stats(
        trace.reads.op_times, trace.reads.latencies_ms, trace.pause_intervals
    )
    print()
    print(render_table(["metric", "READ (G1)"], bands.rows(),
                       title="Band statistics (paper Tables 5-7 format)"))


if __name__ == "__main__":
    main()
