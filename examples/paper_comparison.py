#!/usr/bin/env python3
"""Side-by-side: the paper's published numbers vs. this reproduction.

Re-runs three of the paper's headline experiments and prints each result
next to the value printed in the paper (machine-readable reference data
in :mod:`repro.paper`), flagging whether the *shape* claim holds.

Run:  python examples/paper_comparison.py
"""

from repro import GB, JVM, JVMConfig, MB, paper
from repro.analysis.report import render_table
from repro.analysis.stability import rsd
from repro.cassandra import CassandraServer, stress_config
from repro.jvm.flags import baseline_config
from repro.workloads.dacapo import get_benchmark


def table2_comparison() -> None:
    rows = []
    for name, (paper_final, paper_total) in paper.TABLE2_RSD.items():
        finals, totals = [], []
        for seed in range(10):
            jvm = JVM(baseline_config(seed=seed))
            r = jvm.run(get_benchmark(name), iterations=10, system_gc=True)
            finals.append(r.final_iteration_time)
            totals.append(r.execution_time)
        rows.append((
            name,
            f"{paper_final:.1f} / {paper_total:.1f}",
            f"{100 * rsd(finals):.1f} / {100 * rsd(totals):.1f}",
        ))
    print(render_table(
        ["benchmark", "paper RSD (final/total %)", "measured"],
        rows, title="Table 2 — stability",
    ))
    print()


def table3_comparison() -> None:
    rows = []
    measured_pairs = []
    paper_pairs = []
    by_young = {r.young_bytes: r for r in paper.TABLE3_H2_CMS
                if r.heap_bytes == 64 * GB}
    measured = {}
    for young in (6 * GB, 12 * GB, 24 * GB):
        jvm = JVM(JVMConfig(gc="CMS", heap=64 * GB, young=young, seed=2))
        r = jvm.run(get_benchmark("h2"), iterations=10, system_gc=False)
        measured[young] = r.gc_log.avg_pause
        ref = by_young[young]
        rows.append((
            f"64GB-{young / GB:g}GB",
            f"{ref.pauses}({ref.full_pauses})",
            ref.avg_pause_s,
            f"{r.gc_log.count}({r.gc_log.full_count})",
            round(r.gc_log.avg_pause, 2),
        ))
    paper_pairs.append((by_young[6 * GB].avg_pause_s, by_young[24 * GB].avg_pause_s))
    measured_pairs.append((measured[6 * GB], measured[24 * GB]))
    anomaly = paper.same_direction(paper_pairs, measured_pairs)
    print(render_table(
        ["config", "paper #p(full)", "paper avg (s)",
         "measured #p(full)", "measured avg (s)"],
        rows, title="Table 3 — H2 under CMS (upper rows)",
    ))
    print(f"young-generation anomaly direction reproduced: {anomaly}\n")


def cassandra_comparison() -> None:
    jvm = JVM(JVMConfig(gc="ParallelOld", heap=64 * GB, young=12 * GB, seed=3))
    server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
    r = jvm.run(server, duration=7200.0, ops_per_second=1350.0)
    fulls = [p.duration for p in r.gc_log.pauses if p.is_full]
    measured_full = max(fulls) if fulls else 0.0
    ref = paper.CASSANDRA_PARALLELOLD["stress_2h"]
    print(render_table(
        ["metric", "paper", "measured"],
        [
            ("stress-test full GCs", f">= {ref['full_gcs']}", len(fulls)),
            ("worst full GC (s)", f"~{ref['full_gc_s']:.0f}",
             round(measured_full, 1)),
        ],
        title="§4.1 — ParallelOld on the Cassandra stress test",
    ))
    rec = paper.compare_value(ref["full_gc_s"], measured_full)
    print(f"full-GC duration ratio (measured/paper): {rec['ratio']:.2f}\n")


def main() -> None:
    print(paper.CITATION + "\n")
    table2_comparison()
    table3_comparison()
    cassandra_comparison()
    print("Full artefact-by-artefact comparison: see EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
