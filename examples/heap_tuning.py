#!/usr/bin/env python3
"""Heap-tuning study: sweep heap and young-generation sizes for H2.

Reproduces the methodology behind the paper's Table 3 as a tuning tool:
for a chosen collector, sweeps heap and young sizes and reports pause
counts, average pause and execution time — including the CMS/ParNew
*young-generation anomaly* (a smaller young generation can mean *longer*
average pauses) and the thrashing regime when the heap barely fits the
live set.

Run:  python examples/heap_tuning.py [gc]   (default: CMS)
"""

import sys

from repro import GB, JVM, JVMConfig, MB
from repro.analysis.pauses import pause_stats
from repro.analysis.report import render_table
from repro.workloads.dacapo import get_benchmark

SWEEP = [
    (64 * GB, 6 * GB), (64 * GB, 12 * GB), (64 * GB, 24 * GB),
    (1 * GB, 200 * MB), (1 * GB, 100 * MB),
    (500 * MB, 200 * MB), (250 * MB, 200 * MB),
]


def fmt(n: float) -> str:
    return f"{n / GB:g}G" if n >= 1 * GB else f"{n / MB:g}M"


def main() -> None:
    gc = sys.argv[1] if len(sys.argv) > 1 else "CMS"
    rows = []
    for heap, young in SWEEP:
        jvm = JVM(JVMConfig(gc=gc, heap=heap, young=young, seed=2))
        result = jvm.run(get_benchmark("h2"), iterations=10, system_gc=False)
        stats = pause_stats(result.gc_log, result.execution_time)
        rows.append((
            f"{fmt(heap)}-{fmt(young)}",
            stats.row()[0],
            stats.row()[1],
            stats.row()[2],
            stats.row()[3],
            f"{100 * stats.pause_fraction:.0f}%",
            "CRASHED" if result.crashed else "",
        ))
    print(render_table(
        ["heap-young", "#pauses(full)", "avg (s)", "total pause (s)",
         "exec (s)", "paused", ""],
        rows,
        title=f"H2 heap/young sweep under {gc}",
    ))
    print("\nReading the table: at 64 GB the first row (small young gen)")
    print("shows the anomaly for CMS/ParNew — premature promotion into the")
    print("free-list old generation makes the *average* pause longer; the")
    print("bottom rows show GC thrashing once the heap barely fits H2's")
    print("live set (hundreds of full collections, most of the run paused).")


if __name__ == "__main__":
    main()
