#!/usr/bin/env python3
"""Compare all six OpenJDK 8 collectors on a DaCapo benchmark.

Reproduces the paper's Figure 1 experiment interactively: runs the chosen
benchmark under every collector, with and without a forced full GC
between iterations, and prints execution times and pause statistics.

Run:  python examples/gc_comparison.py [benchmark]   (default: xalan)
"""

import sys

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.gc import GC_NAMES
from repro.workloads.dacapo import ALL_BENCHMARKS, get_benchmark


def compare(benchmark_name: str, system_gc: bool) -> None:
    rows = []
    for gc in GC_NAMES:
        jvm = JVM(baseline_config(gc=gc, seed=7))
        result = jvm.run(get_benchmark(benchmark_name), iterations=10,
                         system_gc=system_gc)
        log = result.gc_log
        rows.append((
            gc,
            round(result.execution_time, 2),
            round(result.final_iteration_time, 3),
            f"{log.count}({log.full_count})",
            round(log.avg_pause, 3),
            round(log.max_pause, 3),
        ))
    rows.sort(key=lambda r: r[1])
    mode = "with System.gc() between iterations" if system_gc else "no System.gc()"
    print(render_table(
        ["GC", "exec (s)", "final iter (s)", "#pauses(full)",
         "avg pause (s)", "max pause (s)"],
        rows,
        title=f"{benchmark_name} — {mode} (sorted by execution time)",
    ))
    print()


def chart(benchmark_name: str) -> None:
    from repro.analysis.ascii_plot import scatter_plot

    series = {}
    for gc in ("ParallelOldGC", "G1GC", "SerialGC"):
        jvm = JVM(baseline_config(gc=gc, seed=7))
        result = jvm.run(get_benchmark(benchmark_name), iterations=10,
                         system_gc=True)
        series[gc] = (result.gc_log.starts(), result.gc_log.durations())
    print(scatter_plot(series, title=f"{benchmark_name} pause scatter "
                                     "(System GC, Figure 1(a) style)",
                       x_label="execution time (s)", y_label="pause (s)",
                       height=14))
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "xalan"
    if name not in ALL_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; pick one of {ALL_BENCHMARKS}")
    compare(name, system_gc=True)
    compare(name, system_gc=False)
    chart(name)
    print("Paper's finding: ParallelOld leads with forced full GCs and G1")
    print("trails badly (its JDK 8 full GC is single-threaded); without")
    print("forced full GCs the field tightens and SerialGC falls behind.")


if __name__ == "__main__":
    main()
