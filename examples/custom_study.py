#!/usr/bin/env python3
"""Run your own GC study with the grid API and a custom workload.

Two parts:

1. **Grid study** (`repro.studies`): the paper's methodology — benchmarks
   × heap sizes × collectors — as three lines of code, with a Figure
   3-style ranking and a CSV export.
2. **Custom workload** (`repro.workloads.synthetic`): a build-then-serve
   application profile of your own, compared across collectors with an
   ASCII pause chart.

Run:  python examples/custom_study.py
"""

import tempfile

from repro import JVM, baseline_config
from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.report import render_table
from repro.heap.lifetime import Immortal
from repro.studies import GridSpec, run_grid
from repro.units import MB
from repro.workloads.synthetic import AllocationPhase, SyntheticWorkload


def grid_study() -> None:
    spec = GridSpec(
        benchmarks=["xalan", "pmd", "batik"],
        gcs=["Serial", "ParallelOld", "G1"],
        heaps=["16g", "64g"],
        seeds=[0, 1],
        iterations=10,
        system_gc=True,
    )
    print(f"running a {spec.size}-cell grid "
          f"({len(spec.benchmarks)} benchmarks x {len(spec.gcs)} GCs x "
          f"{len(spec.heaps)} heaps x {len(spec.seeds)} seeds)...")
    grid = run_grid(spec)

    ranking = grid.winners()
    print(render_table(
        ["GC", "% of experiments won"],
        [(gc, round(pct, 1)) for gc, pct in ranking.ordered()],
        title="Ranking (Figure 3 methodology)",
    ))
    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as fh:
        grid.to_csv(fh.name)
        print(f"\nfull results exported to {fh.name}\n")


def custom_workload_study() -> None:
    phases = [
        AllocationPhase("build", duration=2.0, alloc_rate=120 * MB,
                        lifetime=Immortal(), pinned_growth=512 * MB,
                        mean_object_size=32 * 1024),
        AllocationPhase("serve", duration=8.0, alloc_rate=250 * MB,
                        dirty_rate=20 * MB),
    ]
    series = {}
    rows = []
    for gc in ("ParallelOldGC", "ConcMarkSweepGC", "G1GC"):
        jvm = JVM(baseline_config(gc=gc, seed=4))
        result = jvm.run(SyntheticWorkload(phases, threads=16))
        series[gc] = (jvm.gc_log.starts(), jvm.gc_log.durations())
        build, serve = result.extras["phase_stats"]
        rows.append((
            gc, round(result.execution_time, 2),
            round(build.gc_pause_seconds, 2),
            round(serve.gc_pause_seconds, 2),
            round(jvm.gc_log.max_pause, 3),
        ))
    print(render_table(
        ["GC", "exec (s)", "GC in build (s)", "GC in serve (s)", "max pause (s)"],
        rows, title="Custom build-then-serve workload",
    ))
    print()
    print(scatter_plot(series, title="Pause trace (custom workload)",
                       x_label="time (s)", y_label="pause (s)", height=12))


def main() -> None:
    grid_study()
    custom_workload_study()


if __name__ == "__main__":
    main()
