#!/usr/bin/env python3
"""Distributed-system impact of GC pauses (the paper's closing warning).

Runs a 3-node simulated Cassandra cluster under each collector and
overlays the gossip failure detector: a stop-the-world pause longer than
the phi-accrual timeout gets the node convicted DOWN, and its share of
the write stream piles up as hinted handoffs — the "cumbersome
synchronization protocol" the paper warns about.

Run:  python examples/distributed_cluster.py [--hours H]
"""

import sys

from repro.analysis.report import render_table
from repro.cassandra import ClusterConfig, run_cluster_study
from repro.units import MB


def main() -> None:
    hours = 1.0
    if "--hours" in sys.argv:
        hours = float(sys.argv[sys.argv.index("--hours") + 1])
    duration = hours * 3600.0
    cluster = ClusterConfig(n_nodes=3, failure_timeout=3.0)

    rows = []
    worst = {}
    for gc in ("ParallelOld", "CMS", "G1", "HTM"):
        res = run_cluster_study(gc, cluster=cluster, duration=duration, seed=3)
        worst[gc] = max((e.pause_duration for e in res.down_events), default=0.0)
        rows.append((
            gc,
            len(res.down_events),
            round(res.total_unavailable_seconds, 1),
            f"{100 * res.availability(duration):.3f}%",
            round(res.hinted_handoff_bytes / MB, 1),
        ))
    print(render_table(
        ["GC", "DOWN convictions", "node-down (s)", "availability",
         "hinted handoff (MB)"],
        rows,
        title=f"3-node Cassandra cluster, {hours:g} h stress load, "
              f"phi timeout {cluster.failure_timeout:g} s",
    ))
    print()
    for gc, pause in worst.items():
        if pause > 0:
            print(f"  worst convicting pause under {gc}: {pause:.1f} s")
    print("\nThe paper's conclusion quantified: the throughput-optimal")
    print("collector repeatedly gets healthy replicas declared dead, while")
    print("the concurrent collectors keep the cluster membership stable —")
    print("and the HTM design (the paper's future work) removes the issue.")


if __name__ == "__main__":
    main()
