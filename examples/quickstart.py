#!/usr/bin/env python3
"""Quickstart: run one DaCapo benchmark on the simulated JVM.

Creates a JVM with the paper's baseline configuration (ParallelOld,
~16 GB heap, ~5.6 GB young generation, TLAB on), runs the xalan
benchmark for 10 iterations with a forced full GC between iterations
(DaCapo's default), and prints the run summary, the per-iteration times
and a HotSpot-style GC log.

Run:  python examples/quickstart.py
"""

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.jvm.gclog import format_gc_log
from repro.workloads.dacapo import get_benchmark


def main() -> None:
    config = baseline_config(seed=42)
    print(f"Machine : {config.topology.describe()}")
    print(f"JVM     : {config.gc.value}, heap {config.heap_bytes / 2**30:.0f} GB, "
          f"young {config.young_bytes / 2**30:.1f} GB\n")

    jvm = JVM(config)
    result = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=True)

    print(result.summary())
    print()
    print(render_table(
        ["iteration", "duration (s)"],
        [(i + 1, round(t, 3)) for i, t in enumerate(result.iteration_times)],
        title="Per-iteration execution time (last = measured run)",
    ))
    print("\nGC log (HotSpot-style):")
    print(format_gc_log(result.gc_log, config.heap_bytes))


if __name__ == "__main__":
    main()
