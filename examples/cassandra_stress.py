#!/usr/bin/env python3
"""The paper's Cassandra stress test (§4.1), server side.

Configures the simulated Cassandra node so that nothing ever flushes
(memtable and commit log sized like the 64 GB heap), replays the
pre-loaded database's commit log at startup, then serves a two-hour
insert load under each of the three main collectors — printing the pause
trace that corresponds to the paper's Figure 4 and the §4.1 findings.

Run:  python examples/cassandra_stress.py [--short]
(--short serves 20 simulated minutes instead of two hours)
"""

import sys

import numpy as np

from repro import GB, JVM, JVMConfig
from repro.analysis.report import render_series, render_table
from repro.cassandra import CassandraServer, stress_config


def main() -> None:
    duration = 1200.0 if "--short" in sys.argv else 7200.0
    rows = []
    for gc in ("ParallelOld", "CMS", "G1"):
        jvm = JVM(JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=3))
        server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
        result = jvm.run(server, duration=duration, ops_per_second=1350.0)
        log = result.gc_log
        stats = result.extras["server_stats"]
        print(f"--- {gc}")
        print(f"    replayed {stats.replayed_bytes / GB:.1f} GB of commit log "
              f"in {stats.replay_seconds:.0f} s before serving")
        xs, ys = log.starts(), log.durations()
        print(render_series(xs, ys, label="    pauses (t, s)", max_points=12))
        fulls = [p for p in log.pauses if p.is_full]
        worst_full = max((p.duration for p in fulls), default=0.0)
        rows.append((
            gc, log.count, len(fulls),
            round(float(np.percentile(ys, 50)), 2) if len(ys) else 0,
            round(log.max_pause, 1),
            round(worst_full / 60.0, 1) if fulls else "-",
        ))
    print()
    print(render_table(
        ["GC", "#pauses", "#full", "p50 pause (s)", "max pause (s)",
         "worst full GC (min)"],
        rows,
        title=f"Cassandra stress test, {duration / 3600:.1f} h of serving",
    ))
    print("\nPaper's finding: ParallelOld eventually stops the node for")
    print("minutes; CMS and G1 avoid full collections but still pause the")
    print("server for seconds at a time — enough for a distributed system")
    print("to suspect the node is down.")


if __name__ == "__main__":
    main()
