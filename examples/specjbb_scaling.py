#!/usr/bin/env python3
"""SPECjbb-style throughput scaling across collectors.

Ramps warehouses (threads) from 1 to twice the core count on the paper's
48-core box and reports business operations per second (BOPS) per
collector — the throughput lens on the same GC behaviour the paper's
DaCapo experiments observe through execution time. Includes the HTM
collector the paper proposes as future work.

Run:  python examples/specjbb_scaling.py
"""

from repro import JVM, baseline_config
from repro.analysis.report import render_table
from repro.workloads.specjbb import SPECjbbWorkload

COLLECTORS = ("SerialGC", "ParallelOldGC", "ConcMarkSweepGC", "G1GC", "HTMGC")
WAREHOUSES = [1, 12, 24, 48, 96]


def main() -> None:
    curves = {}
    for gc in COLLECTORS:
        jvm = JVM(baseline_config(gc=gc, seed=5))
        result = jvm.run(SPECjbbWorkload(), warehouses=WAREHOUSES,
                         measurement_seconds=20.0)
        curves[gc] = result.extras

    rows = []
    for gc in COLLECTORS:
        points = {p.warehouses: p for p in curves[gc]["points"]}
        rows.append(
            [gc]
            + [round(points[w].bops) for w in WAREHOUSES]
            + [round(curves[gc]["score"])]
        )
    print(render_table(
        ["GC"] + [f"{w} wh" for w in WAREHOUSES] + ["score"],
        rows,
        title="SPECjbb-style BOPS by warehouse count (48-core machine)",
    ))

    print("\nGC share of the measurement window at 48 warehouses:")
    for gc in COLLECTORS:
        peak = {p.warehouses: p for p in curves[gc]["points"]}[48]
        print(f"  {gc:16s} {100 * peak.gc_pause_seconds / peak.elapsed:5.1f}%")
    print("\nThe stop-the-world collectors lose a large slice of the machine")
    print("to collection at full load (Gidra et al.'s non-scalability);")
    print("the HTM collector trades a constant mutator tax for near-zero")
    print("pause time and wins on this closed-loop workload.")


if __name__ == "__main__":
    main()
