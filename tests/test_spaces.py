"""Tests for heap space accounting."""

import pytest

from repro.errors import ConfigError, HeapError
from repro.heap.spaces import Space, SpaceKind


class TestSpace:
    def test_new_space_empty(self):
        s = Space("eden", SpaceKind.EDEN, 100.0)
        assert s.used == 0.0 and s.free == 100.0

    def test_add_and_remove(self):
        s = Space("eden", SpaceKind.EDEN, 100.0)
        s.add(60.0)
        s.remove(20.0)
        assert s.used == 40.0

    def test_occupancy(self):
        s = Space("old", SpaceKind.OLD, 200.0)
        s.add(50.0)
        assert s.occupancy == 0.25

    def test_occupancy_of_zero_capacity(self):
        assert Space("x", SpaceKind.OLD, 0.0).occupancy == 0.0

    def test_overflow_rejected(self):
        s = Space("eden", SpaceKind.EDEN, 100.0)
        with pytest.raises(HeapError):
            s.add(101.0)

    def test_underflow_rejected(self):
        s = Space("eden", SpaceKind.EDEN, 100.0)
        with pytest.raises(HeapError):
            s.remove(1.0)

    def test_can_fit(self):
        s = Space("eden", SpaceKind.EDEN, 100.0)
        s.add(90.0)
        assert s.can_fit(10.0)
        assert not s.can_fit(11.0)

    def test_reset_empties(self):
        s = Space("eden", SpaceKind.EDEN, 100.0)
        s.add(70.0)
        s.reset()
        assert s.used == 0.0

    def test_resize_refuses_below_used(self):
        s = Space("old", SpaceKind.OLD, 100.0)
        s.add(60.0)
        with pytest.raises(HeapError):
            s.resize(50.0)

    def test_resize_grows(self):
        s = Space("old", SpaceKind.OLD, 100.0)
        s.resize(200.0)
        assert s.capacity == 200.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Space("x", SpaceKind.OLD, -1.0)

    def test_negative_add_rejected(self):
        with pytest.raises(ConfigError):
            Space("x", SpaceKind.OLD, 10.0).add(-1.0)
