"""Fleet subsystem: nodes, routing, scaling, and the study deliverable."""

import json

import numpy as np
import pytest

from repro.campaign.store import ResultStore
from repro.errors import ConfigError
from repro.fleet import (AutoscalerConfig, DiurnalTraffic, FleetBalancer,
                         FleetNode, FleetStudyConfig, GCCalibration,
                         MonkPolicy, NodeModelConfig, PausePredictivePolicy,
                         ReactiveAutoscaler, RoundRobinPolicy, TrafficConfig,
                         calibrate_collector, make_policy, run_fleet_study,
                         split_ops)
from repro.fleet.study import PolicyOutcome


def synthetic_cal(**kw):
    """A hand-built calibration for node-mechanics unit tests."""
    defaults = dict(
        gc="ParallelOldGC", young_capacity=1000.0, alloc_per_op=1.0,
        background_alloc=10.0, young_pauses=(0.05,), promoted=(100.0,),
        old_capacity=2000.0, full_seconds_per_byte=0.001, full_residual=0.5)
    defaults.update(kw)
    return GCCalibration(**defaults)


def study_config(**kw):
    """Compressed study: one diurnal period squeezed into two hours."""
    defaults = dict(
        gcs=("ParallelOld",),
        policies=("round-robin", "least-outstanding",
                  "pause-predictive", "monk"),
        n_nodes=8, duration=7200.0, tick=1.0,
        traffic=TrafficConfig(users=300_000, period=7200.0),
        calibration_duration=900.0, seed=42)
    defaults.update(kw)
    return FleetStudyConfig(**defaults)


@pytest.fixture(scope="module")
def study_store(tmp_path_factory):
    return ResultStore(tmp_path_factory.mktemp("fleet-store"))


@pytest.fixture(scope="module")
def study(study_store):
    return run_fleet_study(study_config(), store=study_store)


class TestCalibration:
    def test_cached_calibration_identical(self, study_store, study):
        # The study fixture populated the store; calibrating again must
        # be a cache hit that reproduces the exact same parameters.
        config = study_config()
        cal, hit = calibrate_collector(config, "ParallelOld",
                                       store=study_store)
        assert hit
        assert cal.gc == "ParallelOldGC"
        cal2, hit2 = calibrate_collector(config, "ParallelOld",
                                         store=study_store)
        assert hit2 and cal == cal2

    def test_calibration_fields_sane(self, study_store):
        cal, _ = calibrate_collector(study_config(), "ParallelOld",
                                     store=study_store)
        assert cal.young_capacity > 0
        assert cal.alloc_per_op > 0
        assert cal.background_alloc > 0
        assert cal.old_capacity > 0
        assert cal.full_seconds_per_byte > 0
        assert 0 < cal.full_residual < 1
        assert len(cal.young_pauses) == len(cal.promoted) > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            synthetic_cal(young_capacity=0.0)
        with pytest.raises(ConfigError):
            synthetic_cal(young_pauses=())


class TestFleetNode:
    def make_node(self, **model_kw):
        model = NodeModelConfig(**model_kw)
        return FleetNode(0, synthetic_cal(), model, seed=1)

    def test_offer_records_latency_classes(self):
        node = self.make_node()
        lat, n = node.offer(0.0, 1.0, 50)
        assert n == 50
        assert lat > 0
        assert node.hist.total_count == 50
        assert node.ops_served == 50

    def test_young_gc_fires_when_eden_fills(self):
        node = self.make_node()
        node.offer(0.0, 1.0, 1000)      # 1000 ops x 1 B/op >= capacity
        assert node.young_gcs == 1
        assert node.eden_used == 0.0
        assert node.backlog(1.0) > 0    # the pause queued work

    def test_promotion_chains_into_full_gc(self):
        # old starts at 0.6 x 2000 = 1200; threshold 0.9 x 2000 = 1800;
        # each young GC promotes 100 bytes -> full on the 6th young GC.
        node = self.make_node()
        for i in range(6):
            node.offer(float(i * 10), 1.0, 1000)
        assert node.young_gcs == 6
        assert node.full_gcs == 1
        assert node.old_used == pytest.approx(1800 * 0.5)

    def test_force_gc_collects_old_generation(self):
        node = self.make_node()
        before = node.old_used
        pause = node.force_gc(0.0)
        assert pause > 0
        assert node.forced_gcs == 1
        assert node.old_used == pytest.approx(before * 0.5)
        assert node.backlog(0.0) == pytest.approx(pause)

    def test_predicted_time_to_pause_shrinks_with_rate(self):
        node = self.make_node()
        slow = node.predicted_time_to_pause(0.0, 10.0)
        fast = node.predicted_time_to_pause(0.0, 1000.0)
        assert fast < slow
        assert node.predicted_time_to_pause(0.0, 0.0) < float("inf")  # bg alloc

    def test_node_stream_is_deterministic(self):
        a = FleetNode(3, synthetic_cal(), NodeModelConfig(), seed=9)
        b = FleetNode(3, synthetic_cal(), NodeModelConfig(), seed=9)
        la, _ = a.offer(0.0, 1.0, 10)
        lb, _ = b.offer(0.0, 1.0, 10)
        assert la == lb
        c = FleetNode(4, synthetic_cal(), NodeModelConfig(), seed=9)
        lc, _ = c.offer(0.0, 1.0, 10)
        assert lc != la

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            NodeModelConfig(old_start_fraction=0.95, full_threshold=0.9)
        with pytest.raises(ConfigError):
            NodeModelConfig(full_threshold=0.0)
        with pytest.raises(ConfigError):
            NodeModelConfig(old_capacity=-1.0)


class TestSplitOps:
    def test_conserves_ops(self):
        counts = split_ops(1001, np.array([1.0, 2.0, 3.0]))
        assert counts.sum() == 1001

    def test_proportional(self):
        counts = split_ops(600, np.array([1.0, 2.0, 3.0]))
        assert list(counts) == [100, 200, 300]

    def test_zero_weights_fall_back_to_uniform(self):
        counts = split_ops(9, np.zeros(3))
        assert counts.sum() == 9
        assert counts.max() - counts.min() <= 1

    def test_rotation_moves_the_remainder(self):
        first = split_ops(10, np.ones(4), rotation=0)
        second = split_ops(10, np.ones(4), rotation=1)
        assert first.sum() == second.sum() == 10
        assert list(first) != list(second)

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigError):
            split_ops(10, np.array([]))
        with pytest.raises(ConfigError):
            split_ops(10, np.array([1.0, -1.0]))


class TestPolicies:
    def test_registry_round_trip(self):
        for name in ("round-robin", "least-outstanding",
                     "pause-predictive", "monk"):
            assert make_policy(name).name == name
        with pytest.raises(ConfigError):
            make_policy("random")

    def test_least_outstanding_sheds_paused_node(self):
        nodes = [FleetNode(i, synthetic_cal(), NodeModelConfig(), seed=1)
                 for i in range(2)]
        nodes[0].offer(0.0, 1.0, 1000)   # triggers a pause on node 0
        w = make_policy("least-outstanding").weights(1.0, nodes, 100.0)
        assert w[0] < w[1]

    def test_pause_predictive_starves_imminent_node(self):
        policy = PausePredictivePolicy(horizon=5.0, trickle=0.05)
        nodes = [FleetNode(i, synthetic_cal(), NodeModelConfig(), seed=1)
                 for i in range(2)]
        nodes[0].eden_used = 990.0       # ~imminent at any real rate
        w = policy.weights(0.0, nodes, per_node_rate=100.0)
        assert w[0] == pytest.approx(0.05)
        assert w[1] == 1.0

    def test_pause_predictive_zeroes_mid_pause_node(self):
        policy = PausePredictivePolicy()
        nodes = [FleetNode(i, synthetic_cal(), NodeModelConfig(), seed=1)
                 for i in range(2)]
        nodes[0].offer(0.0, 1.0, 1000)
        w = policy.weights(1.0, nodes, per_node_rate=10.0)
        assert w[0] == 0.0 and w[1] > 0

    def test_monk_forces_only_in_valley(self):
        policy = MonkPolicy(old_trigger=0.45, cooldown=10.0)
        traffic = DiurnalTraffic(TrafficConfig(users=1000, period=7200.0),
                                 seed=1)
        nodes = [FleetNode(i, synthetic_cal(), NodeModelConfig(), seed=1)
                 for i in range(3)]
        assert policy.maintain(1800.0, nodes, traffic) == []  # mid-slope
        forced = policy.maintain(0.0, nodes, traffic)         # valley
        assert len(forced) == 1
        assert forced[0].forced_gcs == 1
        # Cooldown: an immediate second call forces nothing.
        assert policy.maintain(1.0, nodes, traffic) == []

    def test_monk_respects_old_trigger(self):
        policy = MonkPolicy(old_trigger=0.99, cooldown=10.0)
        traffic = DiurnalTraffic(TrafficConfig(users=1000, period=7200.0),
                                 seed=1)
        nodes = [FleetNode(0, synthetic_cal(), NodeModelConfig(), seed=1)]
        assert policy.maintain(0.0, nodes, traffic) == []


class TestBalancer:
    def make_fleet(self, n=3):
        traffic = DiurnalTraffic(TrafficConfig(users=1000, period=7200.0),
                                 seed=2)
        nodes = [FleetNode(i, synthetic_cal(), NodeModelConfig(), seed=2)
                 for i in range(n)]
        return FleetBalancer(nodes, RoundRobinPolicy(), traffic)

    def test_tick_conserves_ops(self):
        balancer = self.make_fleet()
        _, counts = balancer.tick(0.0, 1.0, 100)
        assert counts.sum() == 100
        assert sum(n.ops_served for n in balancer.nodes) == 100

    def test_warming_node_takes_no_traffic(self):
        balancer = self.make_fleet()
        late = FleetNode(9, synthetic_cal(), NodeModelConfig(), seed=2,
                         joined_at=100.0)
        balancer.nodes.append(late)
        balancer.tick(0.0, 1.0, 90)
        assert late.ops_served == 0
        balancer.tick(100.0, 1.0, 80)
        assert late.ops_served > 0

    def test_empty_fleet_rejected(self):
        traffic = DiurnalTraffic(TrafficConfig(users=1000), seed=2)
        with pytest.raises(ConfigError):
            FleetBalancer([], RoundRobinPolicy(), traffic)


class TestAutoscaler:
    def make_scaler(self, **kw):
        defaults = dict(min_nodes=1, max_nodes=8, slo_ms=50.0, window=60.0,
                        breach_fraction=0.02, warmup=30.0, cooldown=60.0)
        defaults.update(kw)
        config = AutoscalerConfig(**defaults)
        traffic = DiurnalTraffic(TrafficConfig(users=1000, period=7200.0),
                                 seed=3)
        nodes = [FleetNode(i, synthetic_cal(), NodeModelConfig(), seed=3)
                 for i in range(2)]
        balancer = FleetBalancer(nodes, RoundRobinPolicy(), traffic)
        scaler = ReactiveAutoscaler(config, synthetic_cal(),
                                    NodeModelConfig(), seed=3)
        scaler.attach(balancer)
        return scaler, balancer, traffic

    def test_breaches_trigger_scale_out(self):
        scaler, balancer, traffic = self.make_scaler()
        lat = np.array([100.0, 1.0])
        counts = np.array([50, 50])
        for t in range(61):
            scaler.observe(float(t), 1.0, balancer, traffic, lat, counts)
        assert scaler.scale_out_count == 1
        assert len(balancer.nodes) == 3
        assert balancer.nodes[-1].joined_at > 60.0   # warmup applies
        assert scaler.first_scale_out() is not None

    def test_quiet_window_no_action(self):
        # min_nodes == fleet size: the valley scale-in path is closed,
        # and without breaches nothing else may act.
        scaler, balancer, traffic = self.make_scaler(min_nodes=2)
        lat = np.array([1.0, 1.0])
        counts = np.array([50, 50])
        for t in range(61):
            scaler.observe(float(t), 1.0, balancer, traffic, lat, counts)
        assert scaler.events == []

    def test_valley_scale_in_retires_newest(self):
        # Tiny population => negligible utilization; t=0 is a valley.
        scaler, balancer, traffic = self.make_scaler()
        lat = np.array([1.0, 1.0])
        counts = np.array([1, 1])
        for t in range(61):
            scaler.observe(float(t), 1.0, balancer, traffic, lat, counts)
        assert [e.action for e in scaler.events] == ["in"]
        assert len(balancer.nodes) == 1
        assert len(scaler.retired) == 1
        assert scaler.retired[0].node_id == 1      # newest left first

    def test_respects_max_nodes(self):
        scaler, balancer, traffic = self.make_scaler(max_nodes=2)
        lat = np.array([100.0, 100.0])
        counts = np.array([50, 50])
        for t in range(61):
            scaler.observe(float(t), 1.0, balancer, traffic, lat, counts)
        assert scaler.events == []

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_nodes=5, max_nodes=2)
        with pytest.raises(ConfigError):
            AutoscalerConfig(breach_fraction=1.5)


class TestFleetStudy:
    def test_ops_conserved_across_policies(self, study):
        config = study_config()
        traffic = DiurnalTraffic(config.traffic, seed=config.seed)
        total = int(traffic.arrivals(0.0, config.duration,
                                     config.tick).sum())
        for outcome in study.outcomes:
            assert outcome.ops == total

    def test_pause_predictive_beats_round_robin_p999(self, study):
        # The acceptance ordering: routing away from predicted pauses
        # must strictly improve the extreme tail over the GC-blind split.
        rr = study.outcome("ParallelOld", "round-robin")
        pp = study.outcome("ParallelOld", "pause-predictive")
        assert pp.percentile(99.9) < rr.percentile(99.9)

    def test_monk_reduces_scale_outs(self, study):
        # Valley collections keep peak full pauses (and hence the
        # GC-blind autoscaler's breach windows) from ever firing.
        rr = study.outcome("ParallelOld", "round-robin")
        monk = study.outcome("ParallelOld", "monk")
        assert monk.forced_gcs > 0
        assert monk.scale_outs < rr.scale_outs

    def test_study_is_deterministic(self, study, study_store):
        # Second run hits the calibration cache and must reproduce the
        # study JSON byte for byte.
        again = run_fleet_study(study_config(), store=study_store)
        assert again.calibration_hits == again.calibration_total == 1
        assert again.to_json() == study.to_json()

    def test_json_round_trip_preserves_rendering(self, study):
        from repro.fleet import FleetStudyResult

        back = FleetStudyResult.from_dict(json.loads(study.to_json()))
        assert back.render() == study.render()
        assert back.to_json() == study.to_json()

    def test_outcome_lookup(self, study):
        outcome = study.outcome("ParallelOld", "monk")
        assert outcome.policy == "monk"
        with pytest.raises(ConfigError):
            study.outcome("ParallelOld", "nope")

    def test_render_and_plots(self, study):
        text = study.render()
        for name in study.config.policies:
            assert name in text
        assert "P99.9" in text
        nodes_plot = study.plot_nodes("ParallelOld")
        assert "fleet size" in nodes_plot
        tail_plot = study.plot_tail("ParallelOld")
        assert "latency tail" in tail_plot
        with pytest.raises(ConfigError):
            study.plot_nodes("CMS")    # not part of this study

    def test_outcome_dict_round_trip(self, study):
        outcome = study.outcomes[0]
        back = PolicyOutcome.from_dict(
            json.loads(json.dumps(outcome.to_dict())))
        assert back.to_dict() == outcome.to_dict()

    def test_node_timeline_sampled(self, study):
        outcome = study.outcomes[0]
        assert len(outcome.node_timeline) >= 2
        t0, n0 = outcome.node_timeline[0]
        assert t0 == 0.0 and n0 == study.config.n_nodes

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            study_config(gcs=())
        with pytest.raises(ConfigError):
            study_config(policies=("bogus",))
        with pytest.raises(ConfigError):
            study_config(n_nodes=0)
        with pytest.raises(ConfigError):
            study_config(duration=0.5)   # below one tick
