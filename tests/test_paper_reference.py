"""Tests for the paper reference-data module and its comparison helpers."""

import pytest

from repro import paper
from repro.gc import GC_NAMES
from repro.machine import PAPER_SERVER
from repro.units import GB
from repro.workloads.dacapo import CRASHING_BENCHMARKS, STABLE_SUBSET


class TestReferenceDataConsistency:
    def test_machine_matches_topology_model(self):
        assert paper.MACHINE["cores"] == PAPER_SERVER.cores
        assert paper.MACHINE["sockets"] == PAPER_SERVER.sockets
        assert paper.MACHINE["ram_bytes"] == PAPER_SERVER.ram_bytes

    def test_baseline_matches_flags_module(self):
        from repro.jvm.flags import baseline_config

        cfg = baseline_config()
        assert paper.BASELINE["heap_bytes"] == cfg.heap_bytes
        assert paper.BASELINE["young_bytes"] == pytest.approx(cfg.young_bytes)
        assert paper.BASELINE["gc"] == cfg.gc.value

    def test_table2_covers_stable_subset(self):
        assert set(paper.TABLE2_RSD) == set(STABLE_SUBSET)

    def test_crashers_match_suite(self):
        assert sorted(paper.CRASHING_BENCHMARKS) == CRASHING_BENCHMARKS

    def test_table3_rows_cover_the_grid(self):
        heaps = {row.heap_bytes for row in paper.TABLE3_H2_CMS}
        assert 64 * GB in heaps and 250 * 1024 ** 2 in heaps
        assert len(paper.TABLE3_H2_CMS) == 10

    def test_table4_covers_all_gcs(self):
        for name, cells in paper.TABLE4_TLAB.items():
            assert set(cells) == set(GC_NAMES), name
            assert set(cells.values()) <= {"+", "=", "-"}

    def test_fig3_system_gc_excludes_g1(self):
        assert paper.FIG3_RANKING["system_gc"]["G1GC"] == 0.0

    def test_tables567_cover_three_main_gcs(self):
        assert set(paper.TABLES567) == {
            "ParallelOldGC", "G1GC", "ConcMarkSweepGC"
        }

    def test_table8_labels_well_formed(self):
        for (gc, env), (throughput, pause) in paper.TABLE8.items():
            assert env in ("DaCapo", "Cassandra")
            assert throughput in ("good", "fairly good", "bad")
            assert pause in ("short", "acceptable", "significant", "unacceptable")


class TestComparisonHelpers:
    def test_compare_value(self):
        rec = paper.compare_value(2.0, 3.0)
        assert rec["ratio"] == pytest.approx(1.5)
        assert rec["rel_error"] == pytest.approx(0.5)

    def test_same_direction_true(self):
        assert paper.same_direction([(1.33, 0.55)], [(8.4, 3.4)])

    def test_same_direction_false(self):
        assert not paper.same_direction([(1.33, 0.55)], [(3.4, 8.4)])

    def test_same_direction_ignores_paper_ties(self):
        assert paper.same_direction([(1.0, 1.0)], [(2.0, 5.0)])


class TestPaperAnomalyEncoded:
    def test_table3_contains_the_anomaly(self):
        """The reference data itself carries the paper's young-gen anomaly:
        avg pause at 6 GB young exceeds the larger-young rows."""
        rows = {row.young_bytes: row for row in paper.TABLE3_H2_CMS
                if row.heap_bytes == 64 * GB}
        assert rows[6 * GB].avg_pause_s > rows[24 * GB].avg_pause_s
        assert rows[6 * GB].avg_pause_s > rows[48 * GB].avg_pause_s

    def test_table3_small_heap_thrashing(self):
        worst = next(row for row in paper.TABLE3_H2_CMS
                     if row.heap_bytes == 250 * 1024 ** 2
                     and row.young_bytes == 200 * 1024 ** 2)
        assert worst.total_pause_s / worst.total_exec_s > 0.5
