"""Property tests for the cluster placement ring and membership.

The fabric's correctness rests on placement being a pure function of
(job digest, live membership). Hypothesis drives the two load-bearing
ring properties — registration-order independence and leave-moves-only-
the-leaver's-digests — plus the membership/NodeSpec plumbing above them.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, Membership, NodeSpec
from repro.errors import ConfigError

#: Node-id alphabet kept printable/structured like real addresses.
node_ids = st.lists(
    st.text(alphabet="abcdefgh0123456789:/.-", min_size=1, max_size=24),
    min_size=1, max_size=8, unique=True)

digests = st.lists(
    st.integers(min_value=0, max_value=2**32).map(
        lambda n: hashlib.sha256(str(n).encode()).hexdigest()),
    min_size=1, max_size=64, unique=True)


class TestRingProperties:
    @settings(max_examples=60, deadline=None)
    @given(ids=node_ids, ds=digests, seed=st.randoms())
    def test_assignment_independent_of_registration_order(self, ids, ds, seed):
        a = HashRing()
        for n in ids:
            a.add(n)
        shuffled = list(ids)
        seed.shuffle(shuffled)
        b = HashRing()
        for n in shuffled:
            b.add(n)
        assert [a.lookup(d) for d in ds] == [b.lookup(d) for d in ds]
        assert a.node_ids == b.node_ids

    @settings(max_examples=60, deadline=None)
    @given(ids=node_ids, ds=digests, data=st.data())
    def test_leave_moves_only_the_leavers_digests(self, ids, ds, data):
        ring = HashRing()
        for n in ids:
            ring.add(n)
        leaver = data.draw(st.sampled_from(ids))
        before = {d: ring.lookup(d) for d in ds}
        ring.remove(leaver)
        if len(ids) == 1:
            assert all(ring.lookup(d) is None for d in ds)
            return
        for d in ds:
            after = ring.lookup(d)
            if before[d] == leaver:
                assert after != leaver
            else:
                assert after == before[d]

    @settings(max_examples=60, deadline=None)
    @given(ids=node_ids, ds=digests)
    def test_rejoin_restores_the_original_assignment(self, ids, ds):
        ring = HashRing()
        for n in ids:
            ring.add(n)
        before = {d: ring.lookup(d) for d in ds}
        ring.remove(ids[0])
        ring.add(ids[0])
        assert {d: ring.lookup(d) for d in ds} == before

    @settings(max_examples=40, deadline=None)
    @given(ids=node_ids, ds=digests)
    def test_preference_order_heads_at_owner_and_covers_everyone(self, ids, ds):
        ring = HashRing()
        for n in ids:
            ring.add(n)
        for d in ds[:8]:
            pref = ring.preference(d)
            assert pref[0] == ring.lookup(d)
            assert sorted(pref) == sorted(ids)

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing()
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        ring.remove("a")
        ring.remove("a")
        assert len(ring) == 0 and ring.lookup("x" * 64) is None

    def test_replicas_spread_load(self):
        ring = HashRing()
        for n in ("a", "b", "c", "d"):
            ring.add(n)
        ds = [hashlib.sha256(str(i).encode()).hexdigest()
              for i in range(2000)]
        counts = {n: 0 for n in ("a", "b", "c", "d")}
        for d in ds:
            counts[ring.lookup(d)] += 1
        # 64 virtual nodes keep every share within a loose 2x band.
        assert all(2000 / 8 <= c <= 2000 / 2 for c in counts.values()), counts

    def test_bad_replicas_rejected(self):
        with pytest.raises(ConfigError):
            HashRing(replicas=0)


class TestNodeSpec:
    def test_parse_unix_forms(self):
        a = NodeSpec.parse("unix:/tmp/w.sock")
        b = NodeSpec.parse("/tmp/w.sock")
        assert a == b
        assert a.node_id == "unix:/tmp/w.sock"
        assert a.socket_path == "/tmp/w.sock"

    def test_parse_tcp(self):
        spec = NodeSpec.parse("127.0.0.1:9001")
        assert spec.node_id == "127.0.0.1:9001"
        assert spec.socket_path is None
        assert (spec.host, spec.port) == ("127.0.0.1", 9001)

    @pytest.mark.parametrize("bad", ["", "unix:", "nocolon", ":123",
                                     "host:notaport", "host:0",
                                     "host:70000"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            NodeSpec.parse(bad)


class TestMembership:
    def test_mark_dead_leaves_the_ring_but_stays_visible(self):
        m = Membership()
        for addr in ("unix:/a", "unix:/b", "unix:/c"):
            m.join(NodeSpec.parse(addr))
        assert m.mark_dead("unix:/b")
        assert m.live_ids() == ["unix:/a", "unix:/c"]
        assert m.dead_ids() == ["unix:/b"]
        ds = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(50)]
        assert all(m.assign(d).node_id != "unix:/b" for d in ds)
        # A join revives the node and restores its placements exactly.
        m.join(NodeSpec.parse("unix:/b"))
        assert m.dead_ids() == []
        fresh = Membership()
        for addr in ("unix:/a", "unix:/b", "unix:/c"):
            fresh.join(NodeSpec.parse(addr))
        assert [m.assign(d).node_id for d in ds] == \
               [fresh.assign(d).node_id for d in ds]

    def test_leave_forgets_dead_nodes_too(self):
        m = Membership()
        m.join(NodeSpec.parse("unix:/a"))
        m.mark_dead("unix:/a")
        assert m.leave("unix:/a")
        assert not m.leave("unix:/a")
        assert m.dead_ids() == [] and len(m) == 0
