"""Tests for the multi-node failure-detector study."""

import numpy as np
import pytest

from repro import JVMConfig
from repro.cassandra import (
    ClusterConfig,
    ClusterResult,
    DownEvent,
    detect_down_events,
    run_cluster_study,
    stress_config,
)
from repro.errors import ConfigError
from repro.units import GB, KB


class TestClusterConfig:
    def test_defaults_valid(self):
        cfg = ClusterConfig()
        assert cfg.n_nodes == 3

    def test_replication_bounded_by_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_nodes=2, replication_factor=3)

    def test_positive_timeouts(self):
        with pytest.raises(ConfigError):
            ClusterConfig(failure_timeout=0)


class TestDetector:
    CFG = ClusterConfig(failure_timeout=3.0, heartbeat_interval=1.0,
                        recovery_delay=1.0)

    def test_short_pauses_do_not_convict(self):
        events = detect_down_events(
            np.array([10.0, 50.0]), np.array([0.5, 3.0]), self.CFG
        )
        assert events == []

    def test_long_pause_convicts(self):
        events = detect_down_events(np.array([100.0]), np.array([240.0]), self.CFG)
        assert len(events) == 1
        e = events[0]
        # convicted after timeout + mean heartbeat latency
        assert e.declared_at == pytest.approx(100.0 + 3.5)
        # recovered once the pause ends plus gossip propagation
        assert e.recovered_at == pytest.approx(100.0 + 240.0 + 1.0)
        assert e.unavailable_seconds == pytest.approx(240.0 - 3.5 + 1.0)

    def test_threshold_is_sharp(self):
        just_under = detect_down_events(np.array([0.0]), np.array([3.4]), self.CFG)
        just_over = detect_down_events(np.array([0.0]), np.array([3.6]), self.CFG)
        assert just_under == [] and len(just_over) == 1

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ConfigError):
            detect_down_events(np.array([1.0]), np.array([1.0, 2.0]), self.CFG)

    def test_node_id_recorded(self):
        events = detect_down_events(np.array([0.0]), np.array([10.0]),
                                    self.CFG, node=7)
        assert events[0].node == 7


class TestClusterStudy:
    @pytest.fixture(scope="class")
    def parallel_old(self):
        return run_cluster_study(
            "ParallelOld", duration=3600.0,
            cluster=ClusterConfig(n_nodes=2), seed=3,
        )

    def test_one_result_per_node(self, parallel_old):
        assert len(parallel_old.node_results) == 2
        assert all(not r.crashed for r in parallel_old.node_results)

    def test_parallel_old_convicted(self, parallel_old):
        """The paper's warning: ParallelOld's pauses get nodes marked down."""
        assert parallel_old.down_events
        assert parallel_old.total_unavailable_seconds > 0
        assert parallel_old.availability(3600.0) < 1.0

    def test_hinted_handoff_proportional(self, parallel_old):
        expected = (parallel_old.write_rate_per_node
                    * parallel_old.total_unavailable_seconds)
        assert parallel_old.hinted_handoff_bytes == pytest.approx(expected)

    def test_events_sorted_by_time(self, parallel_old):
        times = [e.declared_at for e in parallel_old.down_events]
        assert times == sorted(times)

    def test_nodes_unsynchronized(self, parallel_old):
        """Different seeds per node: pause logs differ across replicas."""
        a, b = parallel_old.node_results
        assert list(a.gc_log.starts()) != list(b.gc_log.starts())

    def test_htm_never_convicted(self):
        res = run_cluster_study(
            "HTM", duration=1800.0, cluster=ClusterConfig(n_nodes=2), seed=3
        )
        assert res.down_events == []
        assert res.availability(1800.0) == 1.0

    def test_availability_trivial_without_duration(self):
        res = ClusterResult(gc="x", config=ClusterConfig())
        assert res.availability(0.0) == 1.0
