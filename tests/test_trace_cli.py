"""End-to-end tests for ``repro-trace``, ``--trace`` and ``--trace-dir``.

Pins the pipeline-level acceptance criteria: two same-seed traced runs
produce byte-identical files, the Chrome export validates against the
trace_event schema, and the campaign writes content-addressed traces.
"""

import json
import pathlib

import pytest

from repro.campaign import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.cli import dacapo_main
from repro.errors import ReproError
from repro.studies import GridSpec
from repro.telemetry import read_trace, to_chrome, validate_chrome
from repro.telemetry.cli import main as trace_main
from repro.telemetry.export import TRACE_SCHEMA_VERSION

#: Small pinned recording: a couple of seconds of simulation.
RECORD_ARGS = ["record", "lusearch", "-n", "2", "--gc", "ParallelOld",
               "--heap", "1g", "--young", "256m", "--seed", "3"]


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One pinned ``repro-trace record`` run, shared across tests."""
    path = tmp_path_factory.mktemp("trace") / "a.trace.jsonl"
    assert trace_main(RECORD_ARGS + ["-o", str(path)]) == 0
    return path


class TestRecordDeterminism:
    def test_same_seed_runs_are_byte_identical(self, recorded, tmp_path):
        again = tmp_path / "b.trace.jsonl"
        assert trace_main(RECORD_ARGS + ["-o", str(again)]) == 0
        assert again.read_bytes() == recorded.read_bytes()

    def test_trace_layout(self, recorded):
        lines = [json.loads(l) for l in recorded.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["v"] == TRACE_SCHEMA_VERSION
        assert lines[0]["meta"]["gc"] == "ParallelOldGC"
        assert lines[0]["meta"]["seed"] == 3
        assert lines[-1]["type"] == "summary"
        assert all(d["type"] == "event" for d in lines[1:-1])

    def test_read_trace_round_trip(self, recorded):
        trace = read_trace(str(recorded))
        assert trace.meta["workload"] == "lusearch"
        assert len(trace.events) == trace.summary["events_buffered"]
        assert trace.dropped == 0
        assert trace.pause_hist.total_count == trace.summary["counts"]["gc_phase"]


class TestReportAndDiff:
    def test_report_prints_percentiles(self, recorded, capsys):
        assert trace_main(["report", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert "pauses:" in out
        assert "p99" in out and "ms" in out
        assert "0 dropped" in out

    def test_diff_labels_by_gc(self, recorded, tmp_path, capsys):
        other = tmp_path / "cms.trace.jsonl"
        args = list(RECORD_ARGS)
        args[args.index("ParallelOld")] = "CMS"
        assert trace_main(args + ["-o", str(other)]) == 0
        capsys.readouterr()
        assert trace_main(["diff", str(recorded), str(other)]) == 0
        out = capsys.readouterr().out
        assert "ParallelOldGC vs ConcMarkSweepGC" in out
        assert "p50" in out and "count" in out


class TestChromeExport:
    def test_export_validates(self, recorded, tmp_path):
        out = tmp_path / "chrome.json"
        assert trace_main(["export", str(recorded),
                           "--format", "chrome", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome(doc) == []
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phases

    def test_tracks_and_counters(self, recorded):
        doc = to_chrome(read_trace(str(recorded)))
        names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        heap = [ev for ev in doc["traceEvents"]
                if ev["ph"] == "C" and ev["name"] == "heap_used"]
        assert heap and all(isinstance(ev["args"]["bytes"], float) for ev in heap)
        # every STW pause produced one slice and two heap samples
        slices = [ev for ev in doc["traceEvents"]
                  if ev["ph"] == "X" and ev.get("cat") == "gc"]
        assert len(heap) == 2 * len([s for s in slices if s["tid"] == 1])

    def test_validator_flags_bad_documents(self):
        assert validate_chrome({}) == ["traceEvents must be a list"]
        bad = {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                                "ts": 1.0}]}
        assert any("dur" in p for p in validate_chrome(bad))
        bad = {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "tid": 0,
                                "ts": -1.0, "s": "q"}]}
        problems = validate_chrome(bad)
        assert any("non-negative" in p for p in problems)
        assert any("scope" in p for p in problems)

    def test_jsonl_export_is_canonical_identity(self, recorded, tmp_path):
        out = tmp_path / "copy.trace.jsonl"
        assert trace_main(["export", str(recorded),
                           "--format", "jsonl", "-o", str(out)]) == 0
        assert out.read_bytes() == recorded.read_bytes()


class TestErrors:
    def test_missing_trace_is_a_clean_error(self, tmp_path, capsys):
        assert trace_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_schema_version_mismatch(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"meta","v":999,"meta":{}}\n')
        with pytest.raises(ReproError, match="schema"):
            read_trace(str(bad))

    def test_garbage_line_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ReproError, match="not valid JSON"):
            read_trace(str(bad))

    def test_unknown_record_type_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"mystery"}\n')
        with pytest.raises(ReproError, match="unknown record type"):
            read_trace(str(bad))


class TestRingCapacityFlag:
    def test_small_ring_drops_are_reported(self, tmp_path, capsys):
        out = tmp_path / "tiny.trace.jsonl"
        assert trace_main(RECORD_ARGS + ["--ring-capacity", "16",
                                         "-o", str(out)]) == 0
        assert "dropped" in capsys.readouterr().out
        trace = read_trace(str(out))
        assert len(trace.events) == 16
        assert trace.dropped > 0
        # aggregate counts stay exact despite the drops
        assert sum(trace.summary["counts"].values()) == \
            trace.summary["events_emitted"]


class TestDacapoTraceFlag:
    def test_dacapo_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "dacapo.trace.jsonl"
        rc = dacapo_main(["lusearch", "-n", "2", "--gc", "Serial",
                          "--heap", "1g", "--young", "256m",
                          "--trace", str(out)])
        assert rc == 0
        assert "trace written to" in capsys.readouterr().out
        trace = read_trace(str(out))
        assert trace.meta["gc"] == "SerialGC"
        assert trace.pause_hist.total_count > 0


class TestCampaignTraceDir:
    def test_traces_are_content_addressed(self, tmp_path):
        spec = CampaignSpec(name="traced", grids=[GridSpec(
            benchmarks=["lusearch"], gcs=["Serial", "ParallelOld"],
            heaps=["1g"], youngs=["256m"], seeds=[0], iterations=2)])
        trace_dir = tmp_path / "traces"
        result = run_campaign(spec, store=str(tmp_path / "store"),
                              executor="serial", trace_dir=str(trace_dir))
        assert result.stats.simulated == 2
        digests = [c.digest() for cells in spec.cell_specs() for c in cells]
        paths = {p.name for p in trace_dir.iterdir()}
        assert paths == {f"{d}.trace.jsonl" for d in digests}
        for digest in digests:
            trace = read_trace(str(trace_dir / f"{digest}.trace.jsonl"))
            assert trace.meta["cell_digest"] == digest
            assert trace.meta["benchmark"] == "lusearch"

    def test_cache_hits_do_not_rewrite_traces(self, tmp_path):
        spec = CampaignSpec(name="traced", grids=[GridSpec(
            benchmarks=["lusearch"], gcs=["Serial"], heaps=["1g"],
            youngs=["256m"], seeds=[0], iterations=2)])
        trace_dir = tmp_path / "traces"
        store = str(tmp_path / "store")
        run_campaign(spec, store=store, executor="serial",
                     trace_dir=str(trace_dir))
        marker = next(trace_dir.iterdir())
        marker.write_text("sentinel")  # would be clobbered by a re-trace
        again = run_campaign(spec, store=store, executor="serial",
                             trace_dir=str(trace_dir))
        assert again.stats.cached == 1
        assert marker.read_text() == "sentinel"
