"""Tests for the YCSB client: key choosers, workloads, latency synthesis."""

import numpy as np
import pytest

from repro import JVMConfig
from repro.cassandra import CassandraConfig
from repro.errors import ConfigError
from repro.units import GB, KB, MB
from repro.ycsb import (
    CoreWorkload,
    LOAD_PHASE,
    UniformKeyChooser,
    WORKLOAD_A_LIKE,
    YCSBClient,
    ZipfianKeyChooser,
)
from repro.ycsb.client import KIND_INSERT, KIND_READ, KIND_UPDATE


class TestKeyChoosers:
    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        keys = UniformKeyChooser(100).choose(rng, 10_000)
        assert keys.min() >= 0 and keys.max() < 100

    def test_uniform_roughly_flat(self):
        rng = np.random.default_rng(0)
        keys = UniformKeyChooser(10).choose(rng, 100_000)
        counts = np.bincount(keys, minlength=10)
        assert counts.std() / counts.mean() < 0.05

    def test_zipfian_range(self):
        rng = np.random.default_rng(0)
        keys = ZipfianKeyChooser(1000).choose(rng, 10_000)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_zipfian_skewed_to_low_keys(self):
        rng = np.random.default_rng(0)
        keys = ZipfianKeyChooser(10_000).choose(rng, 100_000)
        hot = np.mean(keys < 100)  # hottest 1 %
        assert hot > 0.3  # far above the uniform 1 %

    def test_zipfian_hot_fraction_exceeds_uniform(self):
        z = ZipfianKeyChooser(10_000)
        u = UniformKeyChooser(10_000)
        assert z.hot_fraction(0.01) > 5 * u.hot_fraction(0.01)

    def test_zipfian_theta_validated(self):
        with pytest.raises(ConfigError):
            ZipfianKeyChooser(100, theta=1.5)

    def test_empty_records_rejected(self):
        with pytest.raises(ConfigError):
            UniformKeyChooser(0)


class TestCoreWorkload:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            CoreWorkload(name="bad", read_proportion=0.5,
                         update_proportion=0.0, insert_proportion=0.0)

    def test_load_phase_pure_inserts(self):
        assert LOAD_PHASE.insert_proportion == 1.0

    def test_workload_a_like_50_50(self):
        assert WORKLOAD_A_LIKE.read_proportion == 0.5
        assert WORKLOAD_A_LIKE.update_proportion == 0.5

    def test_with_copies(self):
        w = LOAD_PHASE.with_(operations_per_second=99.0)
        assert w.operations_per_second == 99.0
        assert LOAD_PHASE.operations_per_second != 99.0

    def test_key_chooser_kind(self):
        assert isinstance(LOAD_PHASE.key_chooser(), ZipfianKeyChooser)
        uni = LOAD_PHASE.with_(key_distribution="uniform")
        assert isinstance(uni.key_chooser(), UniformKeyChooser)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigError):
            CoreWorkload(name="x", key_distribution="gaussian")


@pytest.fixture
def small_client_run(tiny_topology):
    """A short 50/50 client run on the tiny machine (shared across tests)."""
    cfg = JVMConfig(gc="ParallelOld", heap=2 * GB, young=512 * MB,
                    topology=tiny_topology, seed=13)
    cass = CassandraConfig(
        memtable_cap_bytes=1.5 * GB, commitlog_cap_bytes=256 * MB,
        commitlog_segment_bytes=4 * MB, memtable_chunk_bytes=4 * MB,
        transient_bytes_per_op=64 * KB,
    )
    workload = WORKLOAD_A_LIKE.with_(operations_per_second=3000.0)
    client = YCSBClient(workload, seed=13)
    return client.run(cfg, cass, duration=180.0, samples_per_second=400.0)


class TestClientSynthesis:
    def test_kinds_follow_mix(self, small_client_run):
        kinds = small_client_run.kinds
        assert abs(np.mean(kinds == KIND_READ) - 0.5) < 0.05
        assert abs(np.mean(kinds == KIND_UPDATE) - 0.5) < 0.05
        assert np.mean(kinds == KIND_INSERT) == 0.0

    def test_times_sorted_within_window(self, small_client_run):
        t = small_client_run.op_times
        assert np.all(np.diff(t) >= 0)
        assert t[-1] <= small_client_run.server_result.execution_time

    def test_latencies_positive(self, small_client_run):
        assert np.all(small_client_run.latencies_ms > 0)

    def test_ops_during_pauses_inflated(self, small_client_run):
        cr = small_client_run
        if cr.pause_intervals.size == 0:
            pytest.skip("no pauses in this short run")
        starts, ends = cr.pause_intervals[:, 0], cr.pause_intervals[:, 1]
        idx = np.searchsorted(starts, cr.op_times, side="right") - 1
        inside = (idx >= 0) & (cr.op_times < ends[np.clip(idx, 0, None)])
        if not inside.any():
            pytest.skip("no sampled op landed inside a pause")
        # ops inside a pause wait for the remaining pause: much slower on
        # average (an op arriving just before the safepoint ends waits ~0)
        assert cr.latencies_ms[inside].mean() > 5 * cr.latencies_ms[~inside].mean()

    def test_reads_and_updates_split(self, small_client_run):
        r, u = small_client_run.reads, small_client_run.updates
        assert len(r.latencies_ms) + len(u.latencies_ms) == len(
            small_client_run.latencies_ms
        )
        assert np.all(r.kinds == KIND_READ)

    def test_update_baseline_tighter_than_read(self, small_client_run):
        r = small_client_run.reads.latencies_ms
        u = small_client_run.updates.latencies_ms
        # compare the non-GC bulk via medians
        assert np.median(u) < np.median(r)

    def test_top_points_sorted_by_time(self, small_client_run):
        xs, ys = small_client_run.top_points(100)
        assert np.all(np.diff(xs) >= 0)
        assert len(xs) == min(100, len(small_client_run.latencies_ms))

    def test_deterministic(self, tiny_topology):
        def one():
            cfg = JVMConfig(gc="G1", heap=2 * GB, young=256 * MB,
                            topology=tiny_topology, seed=3)
            cass = CassandraConfig(transient_bytes_per_op=64 * KB)
            client = YCSBClient(WORKLOAD_A_LIKE.with_(operations_per_second=2000.0), seed=3)
            return client.run(cfg, cass, duration=60.0, samples_per_second=100.0)

        a, b = one(), one()
        np.testing.assert_array_equal(a.latencies_ms, b.latencies_ms)
