"""Tests for the campaign subsystem: cells, store, runner, progress."""

import json

import pytest

from repro.errors import ConfigError
from repro.campaign import (
    CampaignSpec,
    CellSpec,
    ProcessExecutor,
    ProgressReporter,
    ResultStore,
    SerialExecutor,
    decode_run,
    default_workers,
    encode_run,
    get_executor,
    run_campaign,
    run_cell,
)
from repro.studies import GridSpec, run_grid
from repro.units import GB, MB

#: One tiny, fast grid reused across the suite (2 cells).
TINY = GridSpec(benchmarks=["lusearch", "batik"], gcs=["Serial"], heaps=["1g"],
                youngs=["256m"], seeds=[0], iterations=2)


def tiny_campaign(name="tiny"):
    return CampaignSpec(name, [TINY])


# ----------------------------------------------------------------------
# CellSpec
# ----------------------------------------------------------------------


class TestCellSpec:
    def test_axes_normalized(self):
        cell = CellSpec.from_axes("xalan", "g1", "16g", "256m", 3)
        assert cell.gc == "G1GC"
        assert cell.heap == 16 * GB
        assert cell.young == 256 * MB
        assert cell.seed == 3

    def test_digest_ignores_axis_spelling(self):
        a = CellSpec.from_axes("xalan", "g1", "16g", None, 0)
        b = CellSpec.from_axes("xalan", "G1GC", 16 * GB, None, 0)
        assert a == b and a.digest() == b.digest()

    def test_digest_sensitive_to_config(self):
        base = CellSpec.from_axes("xalan", "g1", "16g", None, 0)
        for other in (
            CellSpec.from_axes("xalan", "g1", "16g", None, 1),
            CellSpec.from_axes("xalan", "g1", "16g", None, 0, iterations=5),
            CellSpec.from_axes("xalan", "g1", "16g", None, 0, system_gc=False),
            CellSpec.from_axes("xalan", "g1", "16g", None, 0, tlab_enabled=False),
            CellSpec.from_axes("xalan", "g1", "16g", None, 0,
                               overrides={"gc_threads": 4}),
        ):
            assert other.digest() != base.digest()

    def test_dict_round_trip(self):
        cell = CellSpec.from_axes("h2", "cms", "4g", "1g", 7, iterations=3,
                                  overrides={"gc_threads": 2})
        assert CellSpec.from_dict(cell.to_dict()) == cell

    def test_key_matches_run_grid_keys(self):
        grid = run_grid(TINY)
        cells = [CellSpec.from_axes(b, g, h, y, s, iterations=TINY.iterations)
                 for b, g, h, y, s in TINY.cells()]
        assert [c.key() for c in cells] == list(grid.runs)


class TestRunCell:
    def test_matches_run_grid_cell(self):
        grid = run_grid(TINY)
        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        assert run_cell(cell) == grid.runs[cell.key()]

    def test_simulated_crash_is_a_result_not_an_error(self):
        cell = CellSpec.from_axes("eclipse", "Serial", "1g", None, 0,
                                  iterations=1)
        result = run_cell(cell)
        assert result.crashed and "eclipse" in result.crash_reason

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ConfigError):
            run_cell(CellSpec.from_axes("nope", "Serial", "1g", None, 0))


class TestRunCodec:
    def test_round_trip_is_exact(self):
        cell = CellSpec.from_axes("lusearch", "ParallelOld", "1g", "256m", 0,
                                  iterations=2)
        result = run_cell(cell)
        encoded = encode_run(result)
        json.dumps(encoded)  # must be JSON-serializable
        assert decode_run(encoded) == result

    def test_round_trip_preserves_pause_log(self):
        result = run_cell(CellSpec.from_axes("batik", "G1", "1g", "256m", 1,
                                             iterations=2))
        back = decode_run(encode_run(result))
        assert back.gc_log.pauses == result.gc_log.pauses
        assert back.gc_log.concurrent == result.gc_log.concurrent


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class TestExecutors:
    def test_get_executor(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        proc = get_executor("process", workers=3)
        assert isinstance(proc, ProcessExecutor) and proc.workers == 3
        with pytest.raises(ConfigError):
            get_executor("threads")
        with pytest.raises(ConfigError):
            ProcessExecutor(workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_serial_captures_exceptions_as_failures(self):
        cells = [CellSpec.from_axes("nope", "Serial", "1g", None, 0)]
        [(cell, outcome)] = list(SerialExecutor().run_cells(cells, run_cell))
        assert outcome.kind == "exception"
        assert "nope" in outcome.error and isinstance(outcome.exc, ConfigError)
        assert "nope" in outcome.format()

    def test_process_matches_serial(self):
        cells = [CellSpec.from_axes(b, g, h, y, s, iterations=2)
                 for b, g, h, y, s in TINY.cells()]
        serial = [r for _c, r in SerialExecutor().run_cells(cells, run_cell)]
        procs = [r for _c, r in
                 ProcessExecutor(workers=2).run_cells(cells, run_cell)]
        assert serial == procs

    def test_process_timeout_reported_as_failure(self):
        cells = [CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                    iterations=2)]
        [(cell, outcome)] = list(
            ProcessExecutor(workers=1).run_cells(cells, run_cell, timeout=1e-9)
        )
        assert outcome.kind == "timeout"

    def test_on_submit_called_per_cell(self):
        seen = []
        cells = [CellSpec.from_axes(b, g, h, y, s, iterations=2)
                 for b, g, h, y, s in TINY.cells()]
        list(SerialExecutor().run_cells(cells, run_cell, on_submit=seen.append))
        assert seen == cells


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------


class TestResultStore:
    def test_round_trip(self, tmp_path):
        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        result = run_cell(cell)
        store = ResultStore(tmp_path / "s")
        store.record_ok(cell, result)

        reloaded = ResultStore(tmp_path / "s")
        assert len(reloaded) == 1
        assert reloaded.get_run(cell.digest()) == result
        [(back_cell, back_run)] = list(reloaded.iter_ok())
        assert back_cell == cell and back_run == result

    def test_failure_records(self, tmp_path):
        cell = CellSpec.from_axes("nope", "Serial", "1g", None, 0)
        store = ResultStore(tmp_path / "s")
        store.record_failure(cell, "exception", "boom", attempts=3)
        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.failed_digests() == [cell.digest()]
        assert reloaded.get_run(cell.digest()) is None
        assert reloaded.drop_failures() == 1
        assert len(ResultStore(tmp_path / "s")) == 0

    def test_truncated_record_quarantined_not_fatal(self, tmp_path):
        cells = [CellSpec.from_axes(b, g, h, y, s, iterations=2)
                 for b, g, h, y, s in TINY.cells()]
        store = ResultStore(tmp_path / "s")
        for cell in cells:
            store.record_ok(cell, run_cell(cell))
        # Simulate a kill mid-write: chop the last record line in half.
        lines = store.records_path.read_text().splitlines(keepends=True)
        store.records_path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.quarantined_lines == 1
        assert len(reloaded) == len(cells) - 1
        # The corrupt line is compacted away: a further reopen is clean.
        again = ResultStore(tmp_path / "s")
        assert again.quarantined_lines == 0 and len(again) == len(cells) - 1

    def test_garbage_lines_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        store.record_ok(cell, run_cell(cell))
        with open(store.records_path, "a") as fh:
            fh.write("not json at all\n{\"digest\": 1}\n")
        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.quarantined_lines == 2
        assert reloaded.ok_digests() == [cell.digest()]

    def test_csv_matches_grid_result(self, tmp_path):
        grid = run_grid(TINY)
        store = ResultStore(tmp_path / "s")
        for b, g, h, y, s in TINY.cells():
            cell = CellSpec.from_axes(b, g, h, y, s, iterations=TINY.iterations)
            store.record_ok(cell, grid.runs[cell.key()])
        grid.to_csv(tmp_path / "grid.csv")
        store.to_csv(tmp_path / "store.csv")
        assert (tmp_path / "grid.csv").read_text() == (tmp_path / "store.csv").read_text()

    def test_manifest_registry(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        spec = tiny_campaign()
        entry = {"name": spec.name, "digest": spec.digest(),
                 "spec": spec.to_dict(), "cells": spec.size}
        store.register_campaign(entry)
        store.register_campaign(entry)  # idempotent by digest
        manifest = ResultStore(tmp_path / "s").read_manifest()
        assert len(manifest["campaigns"]) == 1
        assert CampaignSpec.from_dict(manifest["campaigns"][0]["spec"]).size == 2


# ----------------------------------------------------------------------
# CampaignSpec
# ----------------------------------------------------------------------


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignSpec("", [TINY])
        with pytest.raises(ConfigError):
            CampaignSpec("x", [])
        with pytest.raises(ConfigError):
            CampaignSpec("x", ["not a grid"])

    def test_size_and_cells(self):
        spec = CampaignSpec("x", [TINY, TINY])
        assert spec.size == 4
        per_grid = spec.cell_specs()
        assert [len(cells) for cells in per_grid] == [2, 2]
        assert per_grid[0] == per_grid[1]

    def test_dict_round_trip(self):
        spec = CampaignSpec("x", [TINY], overrides={"gc_threads": 2})
        back = CampaignSpec.from_dict(spec.to_dict())
        assert back.digest() == spec.digest()
        assert back.cell_specs() == spec.cell_specs()


# ----------------------------------------------------------------------
# run_campaign
# ----------------------------------------------------------------------


class TestRunCampaign:
    def test_matches_run_grid(self):
        serial = run_grid(TINY)
        campaign = run_campaign(tiny_campaign(), executor="serial")
        assert campaign.grid(0).runs == serial.runs
        assert campaign.stats.simulated == 2

    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = tiny_campaign()
        first = run_campaign(spec, store=tmp_path / "s", executor="serial")
        second = run_campaign(spec, store=tmp_path / "s", executor="serial")
        assert first.stats.simulated == 2 and first.stats.cached == 0
        assert second.stats.simulated == 0 and second.stats.cached == 2
        assert second.grid(0).runs == first.grid(0).runs
        assert "cached 2/2" in second.stats.summary()

    def test_partial_store_resumes(self, tmp_path):
        spec = tiny_campaign()
        store = ResultStore(tmp_path / "s")
        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        store.record_ok(cell, run_cell(cell))
        result = run_campaign(spec, store=store, executor="serial")
        assert result.stats.cached == 1 and result.stats.simulated == 1
        assert result.grid(0).runs == run_grid(TINY).runs

    def test_duplicate_cells_simulated_once(self):
        result = run_campaign(CampaignSpec("x", [TINY, TINY]), executor="serial")
        assert result.stats.total == 2 and result.stats.simulated == 2
        assert result.grids[0].runs == result.grids[1].runs

    def test_worker_failures_quarantined_after_retries(self, tmp_path):
        bad = GridSpec(benchmarks=["lusearch", "definitely-not-a-benchmark"],
                       gcs=["Serial"], heaps=["1g"], youngs=["256m"],
                       seeds=[0], iterations=2)
        result = run_campaign(CampaignSpec("bad", [bad]),
                              store=tmp_path / "s", executor="serial", retries=1)
        assert result.stats.quarantined == 1
        assert result.stats.retried == 1
        assert result.stats.simulated == 1
        [failure] = result.quarantined
        assert failure.kind == "exception"
        # Quarantine is persisted, and the good cell still resolved.
        store = ResultStore(tmp_path / "s")
        assert len(store.failed_digests()) == 1
        assert len(result.grid(0).runs) == 1

    def test_failed_records_retried_on_next_run(self, tmp_path):
        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        store = ResultStore(tmp_path / "s")
        store.record_failure(cell, "timeout", "budget", attempts=1)
        result = run_campaign(tiny_campaign(), store=store, executor="serial")
        # The previously failed cell is re-simulated, not served as a hit.
        assert result.stats.simulated == 2 and result.stats.cached == 0

    def test_reporter_counts(self, tmp_path):
        ticks = iter(range(100))
        reporter = ProgressReporter(0, stream=_Sink(),
                                    clock=lambda: float(next(ticks)))
        run_campaign(tiny_campaign(), store=tmp_path / "s", executor="serial",
                     reporter=reporter)
        assert (reporter.done, reporter.cached, reporter.failed) == (2, 0, 0)
        reporter2 = ProgressReporter(0, stream=_Sink(),
                                     clock=lambda: float(next(ticks)))
        run_campaign(tiny_campaign(), store=tmp_path / "s", executor="serial",
                     reporter=reporter2)
        assert (reporter2.done, reporter2.cached) == (2, 2)

    def test_invalid_retries_rejected(self):
        with pytest.raises(ConfigError):
            run_campaign(tiny_campaign(), retries=-1)

    def test_to_csv_concatenates_grids(self, tmp_path):
        result = run_campaign(tiny_campaign(), executor="serial")
        result.to_csv(tmp_path / "c.csv")
        lines = (tmp_path / "c.csv").read_text().splitlines()
        assert len(lines) == 1 + 2 and lines[0].startswith("benchmark,")


# ----------------------------------------------------------------------
# ProgressReporter
# ----------------------------------------------------------------------


class _Sink:
    def __init__(self):
        self.text = ""

    def write(self, s):
        self.text += s

    def flush(self):
        pass


class TestProgressReporter:
    def test_counts_and_line(self):
        sink = _Sink()
        clock = iter(float(i) for i in range(10))
        reporter = ProgressReporter(4, stream=sink, clock=lambda: next(clock))
        reporter.advance()
        reporter.advance(cached=True)
        reporter.advance(failed=True)
        line = reporter.line()
        assert "3/4" in line and "1 cached" in line and "1 failed" in line
        assert "ETA" in line
        reporter.finish()
        assert "3/4" in sink.text

    def test_eta_projection(self):
        clock = iter([0.0, 2.0, 2.0])  # start, advance, eta query
        reporter = ProgressReporter(4, stream=_Sink(), clock=lambda: next(clock))
        reporter.start()
        reporter.done = 1  # bypass rendering's clock reads
        assert reporter.eta_seconds() == pytest.approx(6.0)  # 3 left x 2s/cell

    def test_no_eta_before_progress(self):
        reporter = ProgressReporter(4, stream=_Sink(), clock=lambda: 0.0)
        assert reporter.eta_seconds() is None
        reporter.start()
        assert reporter.eta_seconds() is None


# ----------------------------------------------------------------------
# Campaign summary rendering
# ----------------------------------------------------------------------


class TestCampaignSummary:
    def test_render(self):
        from repro.analysis.report import render_campaign_summary

        result = run_campaign(tiny_campaign(), executor="serial")
        text = render_campaign_summary(result)
        assert "campaign 'tiny'" in text
        assert "cached 0/2" in text
        assert "grid 0: 2 cells" in text


# ----------------------------------------------------------------------
# CellFailure serialization (crosses process and protocol boundaries)
# ----------------------------------------------------------------------


class TestCellFailureSerialization:
    def _failure(self):
        from repro.campaign.executors import CellFailure

        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        try:
            raise RuntimeError("worker exploded")
        except RuntimeError as exc:
            return CellFailure(cell=cell, kind="exception",
                               error="RuntimeError: worker exploded", exc=exc)

    def test_pickle_round_trip_drops_live_exception(self):
        import pickle

        failure = self._failure()
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.exc is None
        assert clone.cell == failure.cell
        assert clone.kind == "exception"
        assert "worker exploded" in clone.error

    def test_pickle_preserves_error_text_from_exc(self):
        import pickle

        from repro.campaign.executors import CellFailure

        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0)
        failure = CellFailure(cell=cell, kind="exception", error="",
                              exc=ValueError("boom"))
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.error == "ValueError: boom"

    def test_json_round_trip(self):
        from repro.campaign.executors import CellFailure

        failure = self._failure()
        d = failure.to_json()
        # Must be directly JSON-encodable — no exception object inside.
        wire = json.loads(json.dumps(d, sort_keys=True))
        clone = CellFailure.from_json(wire)
        assert clone.cell.digest() == failure.cell.digest()
        assert clone.kind == failure.kind
        assert clone.error == failure.error
        assert clone.exc is None

    def test_store_records_via_json_projection(self, tmp_path):
        failure = self._failure()
        store = ResultStore(tmp_path / "store")
        store.record_cell_failure(failure, attempts=3)
        rec = store.get(failure.cell.digest())
        assert rec["status"] == "failed"
        assert rec["kind"] == "exception" and rec["attempts"] == 3
        assert "worker exploded" in rec["error"]
        assert "exc" not in rec
