"""Tests for the telemetry subsystem: histogram, ring, tracer, hooks.

Pins the acceptance properties of the tracing tentpole:

* the HDR-style histogram never under-estimates a percentile, its
  scalar and vectorized paths are bit-identical, and merging is exactly
  associative/commutative (hypothesis-property-tested);
* the event ring drops oldest-first and accounts every drop;
* the disabled path (``NULL_TRACER``) emits nothing and a traced run is
  observationally identical to an untraced one;
* ``GCLog.pause_hist`` agrees with the pause list, including through the
  text GC-log round-trip at the fixed 0.1 µs precision;
* ``repro-lint`` stays clean over the new package with zero new
  baseline entries.
"""

import math
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.gc.stats import GCLog, PauseRecord
from repro.jvm import JVM, JVMConfig
from repro.jvm.gclog import format_gc_log, parse_gc_log
from repro.telemetry import (LogHistogram, NULL_TRACER, NullTracer, Tracer,
                            percentile_rows)
from repro.telemetry.events import GC_PHASE, SAFEPOINT_END, TraceEvent
from repro.telemetry.ring import EventRing
from repro.units import GB, MB
from repro.workloads.dacapo import get_benchmark

ROOT = pathlib.Path(__file__).resolve().parent.parent

durations = st.floats(min_value=0.0, max_value=1e4,
                      allow_nan=False, allow_infinity=False)


class TestHistogramBuckets:
    @given(value=durations)
    @settings(max_examples=200, deadline=None)
    def test_value_falls_in_its_bucket(self, value):
        h = LogHistogram()
        n = h._quantize(value)
        lo, hi = h._decode(h._index(n))
        assert lo <= n < hi

    @given(value=st.floats(min_value=1e-3, max_value=1e4))
    @settings(max_examples=200, deadline=None)
    def test_bucket_width_bounded_by_relative_error(self, value):
        h = LogHistogram()
        n = h._quantize(value)
        lo, hi = h._decode(h._index(n))
        if n >= h._sub_buckets:  # above the first (exact) octave
            assert (hi - lo) <= max(1, math.ceil(lo * h.relative_error))

    @given(a=st.integers(0, 10**12), b=st.integers(0, 10**12))
    @settings(max_examples=200, deadline=None)
    def test_index_is_monotone(self, a, b):
        h = LogHistogram()
        if a > b:
            a, b = b, a
        assert h._index(a) <= h._index(b)

    def test_first_octave_is_exact(self):
        h = LogHistogram(unit=1.0)
        for n in (0, 1, 2, h._sub_buckets - 1):
            lo, hi = h._decode(h._index(n))
            assert (lo, hi) == (n, n + 1)

    def test_bucket_bounds_scale_by_unit(self):
        h = LogHistogram(unit=1e-3)
        lo, hi = h.bucket_bounds(0.5)
        assert lo <= 0.5 <= hi


class TestHistogramPercentiles:
    @given(values=st.lists(durations, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_never_under_estimates(self, values):
        h = LogHistogram()
        for v in values:
            h.record(v)
        for q in (50, 90, 99, 99.9):
            exact = float(np.percentile(values, q, method="inverted_cdf"))
            assert h.percentile(q) >= exact - h.unit
            assert h.percentile(q) <= max(values)

    @given(values=st.lists(durations, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_p100_is_exact_max(self, values):
        h = LogHistogram()
        for v in values:
            h.record(v)
        assert h.percentile(100) == max(values)

    def test_known_rank_semantics(self):
        h = LogHistogram()
        for v in (0.1, 0.2, 0.3, 0.4):
            h.record(v)
        assert h.percentile(50) == pytest.approx(0.2, rel=h.relative_error)
        assert h.percentile(75) == pytest.approx(0.3, rel=h.relative_error)
        assert h.percentile(100) == 0.4

    def test_mean_exact_on_unit_multiples(self):
        h = LogHistogram(unit=1e-3)
        for v in (0.010, 0.020, 0.030):
            h.record(v)
        assert h.mean == pytest.approx(0.020)

    def test_empty_histogram(self):
        h = LogHistogram()
        assert h.percentile(99) == 0.0
        assert h.mean == 0.0
        assert h.total_count == 0

    def test_percentile_rows_shape(self):
        h = LogHistogram()
        h.record(0.5)
        rows = dict(percentile_rows(h))
        assert rows["count"] == 1.0
        assert rows["p100"] == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            LogHistogram(unit=0)
        with pytest.raises(ConfigError):
            LogHistogram(significant_digits=7)
        h = LogHistogram()
        with pytest.raises(ConfigError):
            h.record(-1.0)
        with pytest.raises(ConfigError):
            h.record(1.0, count=0)
        with pytest.raises(ConfigError):
            h.percentile(101)


class TestHistogramVectorized:
    @given(values=st.lists(durations, min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_scalar_and_vector_paths_identical(self, values):
        scalar, vector = LogHistogram(), LogHistogram()
        for v in values:
            scalar.record(v)
        vector.record_array(np.array(values))
        assert scalar == vector

    def test_vector_rejects_negative(self):
        with pytest.raises(ConfigError):
            LogHistogram().record_array([0.1, -0.2])


class TestHistogramMerge:
    @given(values=st.lists(durations, min_size=1, max_size=120),
           cut=st.integers(0, 120))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_single_recording(self, values, cut):
        cut = min(cut, len(values))
        whole = LogHistogram()
        for v in values:
            whole.record(v)
        a, b = LogHistogram(), LogHistogram()
        for v in values[:cut]:
            a.record(v)
        for v in values[cut:]:
            b.record(v)
        assert LogHistogram.merged([a, b]) == whole
        assert LogHistogram.merged([b, a]) == whole  # commutative

    @given(values=st.lists(durations, min_size=3, max_size=90))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, values):
        third = len(values) // 3
        parts = [values[:third], values[third:2 * third], values[2 * third:]]
        hists = []
        for part in parts:
            h = LogHistogram()
            for v in part:
                h.record(v)
            hists.append(h)
        a, b, c = hists
        left = LogHistogram.merged([LogHistogram.merged([a, b]), c])
        right = LogHistogram.merged([a, LogHistogram.merged([b, c])])
        assert left == right

    def test_merge_rejects_geometry_mismatch(self):
        with pytest.raises(ConfigError):
            LogHistogram(unit=1e-6).merge(LogHistogram(unit=1e-3))

    @given(values=st.lists(durations, min_size=0, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, values):
        h = LogHistogram()
        for v in values:
            h.record(v)
        assert LogHistogram.from_dict(h.to_dict()) == h


class TestEventRing:
    def _event(self, seq):
        return TraceEvent(float(seq), seq, "x", 0.0, {})

    def test_no_drop_under_capacity(self):
        ring = EventRing(capacity=8)
        for i in range(5):
            ring.append(self._event(i))
        assert len(ring) == 5 and ring.dropped == 0
        assert [e.seq for e in ring] == [0, 1, 2, 3, 4]

    def test_overflow_drops_oldest_and_counts(self):
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.append(self._event(i))
        assert len(ring) == 4
        assert ring.dropped == 6
        assert [e.seq for e in ring] == [6, 7, 8, 9]  # newest window, in order

    def test_clear_keeps_drop_counter(self):
        ring = EventRing(capacity=2)
        for i in range(5):
            ring.append(self._event(i))
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 3

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            EventRing(capacity=0)


class TestTracer:
    def test_null_tracer_is_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        # Every hook is a no-op returning None.
        assert NULL_TRACER.gc_phase(0.0, 0.1, "young", "c", "G1GC", 0, 0, 0) is None
        assert NULL_TRACER.annotate(0.0, "x", extra=1) is None
        assert not hasattr(NULL_TRACER, "__dict__")  # __slots__: no state

    def test_counts_exact_despite_ring_drops(self):
        tr = Tracer(capacity=2)
        for i in range(5):
            tr.gc_phase(float(i), 0.01, "young", "AF", "G1GC", 0.0, 0.0, 0.0)
        assert tr.counts[GC_PHASE] == 5
        assert tr.seq == 5
        assert len(tr.ring) == 2 and tr.ring.dropped == 3
        summary = tr.summary()
        assert summary["events_emitted"] == 5
        assert summary["events_dropped"] == 3
        assert tr.pause_hist.total_count == 5  # hist immune to ring drops

    def test_safepoint_end_backdates_to_begin(self):
        tr = Tracer()
        tr.safepoint_end(t=2.5, dur=0.5, threads=8)
        ev = next(iter(tr.ring))
        assert ev.name == SAFEPOINT_END
        assert ev.t == 2.0 and ev.dur == 0.5

    def test_gc_phase_feeds_pause_hist(self):
        tr = Tracer()
        tr.gc_phase(1.0, 0.25, "young", "AF", "SerialGC", 0.0, 8 * MB, 2 * MB)
        assert tr.pause_hist.percentile(100) == 0.25


class TestInstrumentedRuns:
    CONFIG = dict(gc="ParallelOld", heap=1 * GB, young=256 * MB, seed=0)

    def _run(self, tracer=None):
        jvm = JVM(JVMConfig(**self.CONFIG), tracer=tracer)
        return jvm, jvm.run(get_benchmark("lusearch"), iterations=2)

    def test_untraced_run_uses_null_tracer_everywhere(self):
        jvm, _result = self._run()
        assert jvm.tracer is NULL_TRACER
        assert jvm.world.tracer is NULL_TRACER
        assert jvm.world.engine.tracer is NULL_TRACER
        assert jvm.world.collector.tracer is NULL_TRACER

    def test_tracing_does_not_perturb_the_simulation(self):
        _, plain = self._run()
        tracer = Tracer()
        _, traced = self._run(tracer)
        assert traced.execution_time == plain.execution_time
        assert traced.gc_log.durations().tolist() == plain.gc_log.durations().tolist()
        # and the tracer saw exactly the pauses the log recorded
        assert tracer.pause_hist.total_count == traced.gc_log.count
        assert tracer.counts[GC_PHASE] == traced.gc_log.count
        assert tracer.meta["gc"] == "ParallelOldGC"

    def test_same_seed_traces_are_identical(self):
        a, b = Tracer(), Tracer()
        self._run(a)
        self._run(b)
        assert a.summary() == b.summary()
        assert list(a.ring) == list(b.ring)


class TestGCLogHistogram:
    def _log(self):
        log = GCLog()
        for i, dur in enumerate((0.25, 1.5, 0.10)):
            log.record(PauseRecord(float(i * 4), dur, "young",
                                   "Allocation Failure", "ParallelOldGC"))
        return log

    def test_hist_tracks_recorded_pauses(self):
        log = self._log()
        assert log.pause_hist.total_count == log.count
        assert log.pause_hist.percentile(100) == log.max_pause

    def test_hist_rebuilt_from_existing_pause_list(self):
        src = self._log()
        clone = GCLog(pauses=list(src.pauses))  # e.g. the store decode path
        assert clone.pause_hist == src.pause_hist

    def test_sublogs_keep_hist_consistent(self):
        log = self._log()
        sub = log.between(3.0, 100.0)
        assert sub.pause_hist.total_count == sub.count

    def test_text_round_trip_preserves_hist_within_precision(self):
        # The fixed .7f duration format (0.1 µs) must round-trip pauses
        # closely enough that the rebuilt histogram's percentiles match
        # the original's to within one histogram bucket.
        log = self._log()
        parsed = parse_gc_log(format_gc_log(log, 16 * GB))
        assert parsed.pause_hist.total_count == log.pause_hist.total_count
        for q in (50, 90, 100):
            assert parsed.pause_hist.percentile(q) == pytest.approx(
                log.pause_hist.percentile(q),
                rel=log.pause_hist.relative_error, abs=2e-7)


class TestLintStaysClean:
    def test_telemetry_package_and_perf_scripts_lint_clean(self):
        from repro.lint.core import run_lint

        result = run_lint([
            str(ROOT / "src" / "repro" / "telemetry"),
            str(ROOT / "benchmarks" / "run_perf.py"),
            str(ROOT / "benchmarks" / "check_regression.py"),
        ])
        assert result.files_checked >= 9
        # Zero findings and zero new baseline entries.
        assert [f.format() for f in result.findings] == []
        assert result.baselined == []


class TestMetricsRegistry:
    """The counters/gauges/histograms behind repro-serve's status."""

    def test_create_on_first_use_and_identity(self):
        from repro.telemetry import MetricsRegistry

        m = MetricsRegistry()
        assert m.counter("a").inc() == 1
        assert m.counter("a").inc(2) == 3
        assert m.counter("a") is m.counter("a")
        m.gauge("g").set(7.5)
        assert m.gauge("g").value == 7.5
        assert m.histogram("h") is m.histogram("h")

    def test_snapshot_is_deterministic_and_json_safe(self):
        import json

        from repro.telemetry import MetricsRegistry

        m = MetricsRegistry()
        m.counter("b").inc()
        m.counter("a").inc(4)
        m.gauge("depth").set(3)
        for v in (0.001, 0.002, 0.004):
            m.histogram("lat").record(v)
        snap = m.to_dict()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 4, "b": 1}
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["max"] == pytest.approx(0.004)
        assert hist["p50"] >= 0.001
        # Stable under re-serialization (the status endpoint contract).
        assert json.dumps(snap, sort_keys=True) == json.dumps(m.to_dict(),
                                                              sort_keys=True)

    def test_empty_histogram_summary(self):
        from repro.telemetry import MetricsRegistry

        m = MetricsRegistry()
        m.histogram("empty")
        snap = m.to_dict()["histograms"]["empty"]
        assert snap == {"count": 0, "mean": 0.0, "max": 0.0}
