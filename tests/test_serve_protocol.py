"""Tests for the repro-serve wire protocol: framing and validation."""

import json

import pytest

from repro.campaign.cells import CellSpec
from repro.errors import ProtocolError
from repro.serve import protocol


class TestDecode:
    def test_round_trip(self):
        msg = {"op": "submit", "id": 7, "job": {"benchmark": "xalan"}}
        line = protocol.encode(msg)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert protocol.decode(line) == msg

    def test_encode_is_canonical(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}\n'

    def test_oversized_line_is_413(self):
        line = b'{"op": "ping", "pad": "' + b"x" * 64 + b'"}\n'
        with pytest.raises(ProtocolError) as err:
            protocol.decode(line, max_bytes=32)
        assert err.value.code == 413

    @pytest.mark.parametrize("line", [
        b"not json at all\n",
        b'{"truncated": \n',
        b"\xff\xfe garbage bytes\n",
        b'[1, 2, 3]\n',            # valid JSON, not an object
        b'"just a string"\n',
        b"42\n",
    ])
    def test_malformed_or_non_object_is_400(self, line):
        with pytest.raises(ProtocolError) as err:
            protocol.decode(line)
        assert err.value.code == 400

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_request({"op": "explode", "id": 1})
        assert err.value.code == 400 and "explode" in str(err.value)

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"id": 1})

    def test_parse_request_returns_id(self):
        assert protocol.parse_request({"op": "ping", "id": 9}) == ("ping", 9)
        assert protocol.parse_request({"op": "ping"}) == ("ping", None)


class TestJobValidation:
    def test_job_to_cell_canonicalizes_like_campaign(self):
        job = {"benchmark": "xalan", "gc": "G1", "heap": "16g",
               "young": "256m", "seed": 3, "iterations": 2}
        cell = protocol.job_to_cell(job)
        want = CellSpec.from_axes("xalan", "G1", "16g", "256m", 3,
                                  iterations=2)
        assert cell == want and cell.digest() == want.digest()

    def test_defaults_applied(self):
        cell = protocol.job_to_cell({"benchmark": "xalan"})
        same = protocol.job_to_cell({"benchmark": "xalan",
                                     "gc": "ParallelOld", "seed": 0})
        assert cell.digest() == same.digest()
        assert cell.iterations == 10

    @pytest.mark.parametrize("job,fragment", [
        ("xalan", "must be a JSON object"),
        ([1], "must be a JSON object"),
        ({}, "missing required field 'benchmark'"),
        ({"benchmark": "xalan", "bogus": 1}, "unknown job field"),
        ({"benchmark": "xalan", "overrides": [1]}, "must be an object"),
        ({"benchmark": "xalan", "gc": "NotAGC"}, "invalid job"),
        ({"benchmark": "xalan", "heap": "one gig"}, "invalid job"),
    ])
    def test_bad_jobs_are_400(self, job, fragment):
        with pytest.raises(ProtocolError) as err:
            protocol.job_to_cell(job)
        assert err.value.code == 400 and fragment in str(err.value)


class TestResponses:
    def test_responses_carry_version_and_id(self):
        for msg in (
            protocol.queued_msg(1, "d" * 64, position=2),
            protocol.result_msg(2, "d" * 64, {}, cached=True, meta={}),
            protocol.failed_msg(3, "d" * 64, {"kind": "timeout"}, meta={}),
            protocol.rejected_msg(4, 429, "full"),
            protocol.error_msg(5, 400, "bad"),
            protocol.stats_msg(6, {}),
            protocol.pong_msg(7),
            protocol.subscribed_msg(8),
            protocol.draining_msg(9),
            protocol.drained_msg(10, {}),
        ):
            assert msg["v"] == protocol.PROTOCOL_VERSION
            assert "id" in msg and "type" in msg
            # Every response must survive the wire.
            assert protocol.decode(protocol.encode(msg)) == msg

    def test_event_has_no_id(self):
        msg = protocol.event_msg({"kind": "queued"})
        assert msg["type"] == "event" and "id" not in msg

    def test_rejection_codes_visible(self):
        msg = protocol.rejected_msg(1, 429, "admission queue full (2 jobs)")
        assert msg["code"] == 429 and "queue full" in msg["reason"]


class TestWireCompat:
    def test_plain_text_protocol(self):
        # The protocol must stay nc-scriptable: a hand-written line parses.
        line = b'{"op":"status","id":"abc"}\n'
        op, rid = protocol.parse_request(protocol.decode(line))
        assert op == "status" and rid == "abc"

    def test_digest_stability_across_paths(self):
        # A job dict and its JSON round trip hit the same cache slot.
        job = {"benchmark": "lusearch", "gc": "CMS", "heap": "2g", "seed": 1}
        direct = protocol.job_to_cell(job)
        wired = protocol.job_to_cell(json.loads(json.dumps(job)))
        assert direct.digest() == wired.digest()
