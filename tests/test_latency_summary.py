"""LatencySummary: the exactly-associative per-node → fleet merge path.

The fleet study's headline tables come from merging per-node histograms;
these properties pin that any association order — left fold, right fold,
balanced tree, pairwise — produces a byte-identical aggregate, and that
adopting a :func:`latency_band_stats` histogram loses nothing.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import (LatencySummary, latency_band_stats)
from repro.errors import ConfigError

latency_arrays = st.lists(
    st.lists(st.floats(0.001, 60_000.0, allow_nan=False,
                       allow_infinity=False),
             min_size=0, max_size=40),
    min_size=1, max_size=6,
)


def canon(summary):
    """Canonical bytes of a summary (what the study JSON embeds)."""
    return json.dumps(summary.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def fold_left(parts):
    out = LatencySummary()
    for p in parts:
        out.merge(p)
    return out


def fold_right(parts):
    out = LatencySummary()
    for p in reversed(parts):
        out.merge(p)
    return out


def fold_tree(parts):
    nodes = [LatencySummary().merge(p) for p in parts]
    while len(nodes) > 1:
        nodes = [fold_left(nodes[i:i + 2]) for i in range(0, len(nodes), 2)]
    return nodes[0]


class TestMergeAssociativity:
    @given(groups=latency_arrays)
    @settings(max_examples=60, deadline=None)
    def test_any_association_order_is_byte_identical(self, groups):
        def fresh():
            return [LatencySummary.of_values(np.array(g)) for g in groups]

        left = canon(fold_left(fresh()))
        assert canon(fold_right(fresh())) == left
        assert canon(fold_tree(fresh())) == left

    @given(groups=latency_arrays)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_pass(self, groups):
        merged = LatencySummary.merged(
            LatencySummary.of_values(np.array(g)) for g in groups)
        flat = LatencySummary.of_values(
            np.concatenate([np.array(g) for g in groups])
            if any(groups) else np.array([]))
        assert canon(merged) == canon(flat)

    @given(groups=latency_arrays)
    @settings(max_examples=40, deadline=None)
    def test_counts_and_extremes_exact(self, groups):
        merged = LatencySummary.merged(
            LatencySummary.of_values(np.array(g)) for g in groups)
        flat = [x for g in groups for x in g]
        assert merged.count == len(flat)
        if flat:
            assert merged.min_ms == pytest.approx(min(flat))
            assert merged.max_ms == pytest.approx(max(flat))


class TestSummaryQueries:
    def test_percentiles_never_underestimate(self):
        values = np.array([1.0, 2.0, 5.0, 100.0])
        s = LatencySummary.of_values(values)
        assert s.percentile(100.0) >= 100.0
        assert s.percentile(50.0) >= 2.0

    def test_avg_at_unit_resolution(self):
        s = LatencySummary.of_values(np.array([1.0, 3.0]))
        assert s.avg_ms == pytest.approx(2.0, abs=1e-3)

    def test_empty_summary(self):
        s = LatencySummary()
        assert s.count == 0
        assert s.min_ms == 0.0 and s.max_ms == 0.0

    def test_count_above_bucket_granularity(self):
        s = LatencySummary.of_values(np.array([0.5, 0.5, 400.0, 900.0]))
        assert s.count_above(100.0) == 2
        assert s.count_above(1e6) == 0

    def test_rows_shape(self):
        s = LatencySummary.of_values(np.array([1.0, 2.0]))
        labels = [r[0] for r in s.rows()]
        assert labels == ["AVG(ms)", "MAX(ms)", "MIN(ms)",
                          "P50(ms)", "P99(ms)", "P99.9(ms)"]

    def test_dict_round_trip(self):
        s = LatencySummary.of_values(np.array([0.7, 3.14, 2500.0]))
        back = LatencySummary.from_dict(json.loads(canon(s)))
        assert canon(back) == canon(s)


class TestBandStatsAdoption:
    def test_of_band_stats_adopts_histogram(self):
        from repro.seeding import rng_for

        rng = rng_for(1, "test.latency-summary")
        lat = rng.gamma(2.0, 1.5, size=500)
        times = np.sort(rng.uniform(0, 100, size=500))
        stats = latency_band_stats(times, lat, np.zeros((0, 2)))
        s = LatencySummary.of_band_stats(stats)
        assert s.count == 500
        assert s.percentile(99.0) == stats.hist.percentile(99.0)

    def test_of_band_stats_requires_histogram(self):
        from repro.analysis.latency import LatencyBandStats

        bare = LatencyBandStats(avg_ms=1.0, max_ms=2.0, min_ms=0.5)
        with pytest.raises(ConfigError):
            LatencySummary.of_band_stats(bare)
