"""Shared fixtures: small, fast configurations for unit tests."""

import pytest

from repro import JVMConfig, MachineTopology
from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.heap.tlab import TLABConfig
from repro.machine.costs import CostModel
from repro.units import GB, MB


@pytest.fixture
def tiny_topology():
    """A small 8-core, 2-NUMA-node machine with 4 GB RAM."""
    return MachineTopology(
        name="tiny",
        sockets=1,
        numa_nodes_per_socket=2,
        cores_per_numa_node=4,
        ram_bytes=4 * GB,
    )


@pytest.fixture
def costs(tiny_topology):
    """Cost model on the tiny machine."""
    return CostModel(topology=tiny_topology)


@pytest.fixture
def small_heap():
    """A 256 MB heap with a 64 MB young generation."""
    return GenerationalHeap(
        HeapConfig(heap_bytes=256 * MB, young_bytes=64 * MB),
        n_mutator_threads=4,
    )


@pytest.fixture
def small_jvm_config(tiny_topology):
    """JVM config factory for quick end-to-end runs."""

    def make(**overrides):
        kw = dict(
            gc="ParallelOld",
            heap=512 * MB,
            young=128 * MB,
            topology=tiny_topology,
            seed=42,
        )
        kw.update(overrides)
        return JVMConfig(**kw)

    return make


@pytest.fixture
def no_tlab():
    """Disabled-TLAB configuration."""
    return TLABConfig(enabled=False)
