"""CLI contract tests for ``repro-lint`` v2: exit-code semantics,
SARIF output, the ``--wp`` pass, suppression block toggles and the
stale-suppression report."""

import json
import pathlib

import pytest

from repro.lint import SuppressionTable, default_rules, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.sarif import validate

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"
WP_FIX = pathlib.Path(__file__).parent / "fixtures" / "lint_wp"


class TestExitCodes:
    """0 = clean, 1 = findings, 2 = the lint pass itself is broken."""

    def test_zero_on_clean(self):
        assert lint_main(["--no-baseline", str(FIXTURES / "clean.py")]) == 0

    def test_one_on_findings(self):
        assert lint_main(["--no-baseline", str(FIXTURES / "sl002_rng.py")]) == 1

    def test_two_on_unparseable_file(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main(["--no-baseline", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "does not parse" in err

    def test_two_without_input_files(self, tmp_path):
        assert lint_main([str(tmp_path)]) == 2

    def test_unparseable_outranks_findings(self, tmp_path):
        # One broken file + one file with violations: the broken pass
        # wins — a partial verdict must not read as "just findings".
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "dirty.py").write_text("import time\nt = time.time()\n")
        assert lint_main(["--no-baseline", "--no-config",
                          str(tmp_path)]) == 2

    def test_crashed_rule_exits_two(self, tmp_path):
        class Exploding:
            rule_id = "SL999"
            whole_program = False

            def applies(self, ctx):
                return True

            def check(self, ctx):
                raise RuntimeError("boom")

        result = run_lint([str(FIXTURES / "clean.py")], [Exploding()])
        assert result.errors and not result.findings
        assert "SL999" in result.errors[0].message


class TestWpFlag:
    def test_wp_runs_project_rules(self, capsys):
        rc = lint_main(["--wp", "--no-baseline", "--no-config", str(WP_FIX)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL101" in out and "SL102" in out

    def test_without_wp_project_rules_stay_off(self, capsys):
        lint_main(["--no-baseline", "--no-config", str(WP_FIX)])
        out = capsys.readouterr().out
        assert "SL102" not in out

    def test_selecting_wp_rule_implies_wp(self, capsys):
        rc = lint_main(["--select", "SL102", "--no-baseline", "--no-config",
                        str(WP_FIX)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL102" in out and "SL101" not in out

    def test_list_rules_includes_wp_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL101", "SL102", "SL103", "SL104", "SL105"):
            assert rule_id in out
        assert "[whole-program]" in out


class TestSarifCli:
    def test_format_sarif_to_file(self, tmp_path):
        out = tmp_path / "lint.sarif"
        rc = lint_main(["--wp", "--no-baseline", "--no-config",
                        "--format", "sarif", "--output", str(out),
                        str(WP_FIX)])
        assert rc == 1                      # exit code still reflects findings
        doc = json.loads(out.read_text())
        assert validate(doc) == []
        assert {r["ruleId"] for r in doc["runs"][0]["results"]} >= {
            "SL101", "SL102", "SL103", "SL104", "SL105"}

    def test_format_sarif_clean_run(self, tmp_path, capsys):
        rc = lint_main(["--no-baseline", "--format", "sarif",
                        str(FIXTURES / "clean.py")])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out.split("repro-lint:")[0])
        assert validate(doc) == []
        assert doc["runs"][0]["results"] == []


class TestSuppressionEdgeCases:
    def test_off_on_block_toggles(self):
        table = SuppressionTable.from_source(
            "a = 1\n"
            "# simlint: off=SL001 -- generated shims\n"
            "b = 2\n"
            "# simlint: on\n"
            "c = 3\n"
        )
        assert not table.is_suppressed("SL001", 1)
        assert table.is_suppressed("SL001", 3)
        assert not table.is_suppressed("SL001", 5)
        assert not table.is_suppressed("SL002", 3)  # other rules unaffected

    def test_bare_off_silences_everything_to_eof(self):
        table = SuppressionTable.from_source("# simlint: off\nx = 1\n")
        assert table.is_suppressed("SL001", 2)
        assert table.is_suppressed("SL006", 999)

    def test_on_closes_only_intersecting_blocks(self):
        table = SuppressionTable.from_source(
            "# simlint: off=SL001\n"
            "# simlint: off=SL002\n"
            "# simlint: on=SL001\n"
            "x = 1\n"
        )
        assert not table.is_suppressed("SL001", 4)
        assert table.is_suppressed("SL002", 4)

    def test_block_toggle_suppresses_real_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\n"
            "# simlint: off=SL001 -- calibration block\n"
            "t = time.time()\n"
            "# simlint: on\n"
        )
        result = run_lint([str(target)], default_rules())
        assert not result.findings
        assert len(result.suppressed) == 1

    def test_report_unused_suppressions_fails_run(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1  # simlint: disable=SL001 -- stale\n")
        rc = lint_main(["--no-baseline", "--no-config",
                        "--report-unused-suppressions", str(target)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "unused suppression" in err

    def test_used_suppressions_not_reported(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # simlint: disable=SL001 -- calibration\n")
        rc = lint_main(["--no-baseline", "--no-config",
                        "--report-unused-suppressions", str(target)])
        assert rc == 0
        assert "unused" not in capsys.readouterr().err


class TestConfig:
    def test_profile_restricts_rules(self, tmp_path, monkeypatch):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\n"
            'paths = ["pkg"]\n'
            "[tool.simlint.profiles]\n"
            'pkg = ["SL002"]\n'
        )
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("import time\nt = time.time()\n")
        monkeypatch.chdir(tmp_path)
        # SL001 is outside the profile: the wall-clock read passes.
        assert lint_main(["--no-baseline"]) == 0
        # --no-config restores the full rule set.
        assert lint_main(["--no-baseline", "--no-config", "pkg"]) == 1

    def test_exclude_prunes_directory_walks(self, tmp_path, monkeypatch):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\n"
            'paths = ["pkg"]\n'
            'exclude = ["pkg/generated"]\n'
        )
        gen = tmp_path / "pkg" / "generated"
        gen.mkdir(parents=True)
        (gen / "mod.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--no-baseline"]) == 0

    def test_mini_toml_fallback_parses_the_table(self):
        from repro.lint.config import _mini_toml
        data = _mini_toml(
            "[tool.simlint]\n"
            'paths = ["src", "tests"]\n'
            'exclude = []\n'
            "[tool.simlint.profiles]\n"
            'tests = ["SL001", "SL002"]\n'
        )
        table = data["tool"]["simlint"]
        assert table["paths"] == ["src", "tests"]
        assert table["profiles"]["tests"] == ["SL001", "SL002"]

    def test_wp_core_parsed_from_pyproject(self, tmp_path):
        from repro.lint.config import LintConfig
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.simlint]\n"
            'paths = ["src"]\n'
            'wp_core = ["sim", "fleet"]\n'
        )
        config = LintConfig.from_pyproject(pyproject)
        assert config.wp_core == ["sim", "fleet"]
        # Absent key => empty list => the rule keeps its default scope.
        pyproject.write_text("[tool.simlint]\npaths = [\"src\"]\n")
        assert LintConfig.from_pyproject(pyproject).wp_core == []

    def test_wp_core_overrides_sl102_scope(self, tmp_path, monkeypatch):
        # A time.time() leak reaches a function in package `other`;
        # SL102 flags it only when `other` is in the configured core.
        pkg = tmp_path / "pkg" / "other"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "import time\n\n\n"
            "def helper():\n"
            "    return time.time()  # simlint: disable=SL001 -- test leak\n\n\n"
            "def core_step():\n"
            "    return helper()\n"
        )
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\n"
            'paths = ["pkg"]\n'
            'wp_core = ["other"]\n'
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--no-baseline", "--wp"]) == 1
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\n"
            'paths = ["pkg"]\n'
            'wp_core = ["unrelated"]\n'
        )
        assert lint_main(["--no-baseline", "--wp"]) == 0
