"""Tests for lifetime distributions, including hypothesis properties.

Key invariants for the analytic cohort model:

* ``0 <= survival(a) <= 1``, non-increasing in ``a``;
* ``integrated_survival`` is non-decreasing and 1-Lipschitz
  (``IS(b) - IS(a) <= b - a`` for ``b > a``);
* ``window_live_fraction`` lies in [0, 1] and is non-increasing in time.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.heap.lifetime import (
    Exponential,
    Fixed,
    Immortal,
    LogNormal,
    Mixture,
    Weibull,
    generational,
)

DISTRIBUTIONS = [
    Immortal(),
    Fixed(2.0),
    Exponential(0.5),
    Weibull(0.6, 3.0),
    Weibull(1.5, 1.0),
    LogNormal(1.0, 0.8),
    generational(),
]

ages = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: repr(d)[:30])
class TestCommonProperties:
    def test_survival_at_zero_is_one(self, dist):
        assert dist.survival(0.0) == pytest.approx(1.0)

    def test_survival_bounded(self, dist):
        a = np.linspace(0, 100, 200)
        s = dist.survival(a)
        assert np.all(s >= 0.0) and np.all(s <= 1.0 + 1e-12)

    def test_survival_monotone_nonincreasing(self, dist):
        a = np.linspace(0, 50, 100)
        s = dist.survival(a)
        assert np.all(np.diff(s) <= 1e-12)

    def test_integrated_survival_nondecreasing(self, dist):
        a = np.linspace(0, 50, 100)
        integrated = dist.integrated_survival(a)
        assert np.all(np.diff(integrated) >= -1e-9)

    def test_integrated_survival_lipschitz(self, dist):
        a = np.linspace(0, 50, 100)
        integrated = dist.integrated_survival(a)
        assert np.all(np.diff(integrated) <= np.diff(a) + 1e-9)

    def test_integrated_survival_zero_at_zero(self, dist):
        assert dist.integrated_survival(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_scalar_in_scalar_out(self, dist):
        assert isinstance(dist.survival(1.0), float)
        assert isinstance(dist.integrated_survival(1.0), float)

    def test_array_in_array_out(self, dist):
        out = dist.survival(np.array([0.0, 1.0]))
        assert isinstance(out, np.ndarray) and out.shape == (2,)

    def test_window_live_fraction_in_unit_interval(self, dist):
        frac = dist.window_live_fraction(0.0, 2.0, 5.0)
        assert 0.0 <= frac <= 1.0

    def test_window_live_fraction_monotone_in_time(self, dist):
        f1 = dist.window_live_fraction(0.0, 2.0, 3.0)
        f2 = dist.window_live_fraction(0.0, 2.0, 30.0)
        assert f2 <= f1 + 1e-9

    def test_zero_width_window_degenerates_to_survival(self, dist):
        frac = dist.window_live_fraction(1.0, 1.0, 4.0)
        assert frac == pytest.approx(float(dist.survival(3.0)), abs=1e-9)


class TestSpecificValues:
    def test_immortal_never_dies(self):
        assert Immortal().survival(1e9) == 1.0
        assert math.isinf(Immortal().mean())

    def test_fixed_step(self):
        d = Fixed(2.0)
        assert d.survival(1.9) == 1.0
        assert d.survival(2.1) == 0.0
        assert d.mean() == 2.0

    def test_fixed_integrated(self):
        d = Fixed(2.0)
        assert d.integrated_survival(5.0) == pytest.approx(2.0)

    def test_exponential_mean(self):
        assert Exponential(0.5).mean() == 0.5

    def test_exponential_survival_value(self):
        assert Exponential(1.0).survival(1.0) == pytest.approx(math.exp(-1))

    def test_exponential_integrated_limit(self):
        # IS(inf) -> tau
        assert Exponential(2.0).integrated_survival(1e6) == pytest.approx(2.0)

    def test_weibull_mean_matches_gamma_formula(self):
        d = Weibull(1.0, 3.0)  # k=1 is exponential with tau=3
        assert d.mean() == pytest.approx(3.0)

    def test_weibull_integrated_matches_quadrature(self):
        from scipy.integrate import quad

        d = Weibull(0.7, 2.0)
        expected, _err = quad(lambda x: float(d.survival(x)), 0, 5.0)
        assert d.integrated_survival(5.0) == pytest.approx(expected, rel=1e-6)

    def test_lognormal_integrated_matches_quadrature(self):
        from scipy.integrate import quad

        d = LogNormal(2.0, 0.5)
        expected, _err = quad(lambda x: float(d.survival(x)), 0, 10.0)
        assert d.integrated_survival(10.0) == pytest.approx(expected, rel=1e-6)

    def test_lognormal_median(self):
        assert LogNormal(3.0, 1.0).survival(3.0) == pytest.approx(0.5)

    def test_mixture_weights_normalized(self):
        m = Mixture([(2.0, Immortal()), (2.0, Exponential(1.0))])
        assert m.survival(1e9) == pytest.approx(0.5)

    def test_mixture_mean_weighted(self):
        m = Mixture([(1.0, Fixed(2.0)), (1.0, Fixed(4.0))])
        assert m.mean() == pytest.approx(3.0)

    def test_generational_shape(self):
        g = generational(short_frac=0.9, immortal_frac=0.02)
        # long-run survival converges to the immortal share
        assert g.survival(1e7) == pytest.approx(0.02, abs=1e-3)


class TestValidation:
    def test_exponential_requires_positive_tau(self):
        with pytest.raises(ConfigError):
            Exponential(0.0)

    def test_weibull_requires_positive_params(self):
        with pytest.raises(ConfigError):
            Weibull(-1, 1)

    def test_lognormal_requires_positive(self):
        with pytest.raises(ConfigError):
            LogNormal(0.0, 1.0)

    def test_fixed_rejects_negative(self):
        with pytest.raises(ConfigError):
            Fixed(-1.0)

    def test_mixture_rejects_empty(self):
        with pytest.raises(ConfigError):
            Mixture([])

    def test_mixture_rejects_negative_weight(self):
        with pytest.raises(ConfigError):
            Mixture([(-1.0, Immortal())])

    def test_window_now_inside_window_rejected(self):
        with pytest.raises(ConfigError):
            Exponential(1.0).window_live_fraction(0.0, 5.0, 2.0)

    def test_window_reversed_rejected(self):
        with pytest.raises(ConfigError):
            Exponential(1.0).window_live_fraction(5.0, 0.0, 10.0)


class TestHypothesisProperties:
    @given(age1=ages, age2=ages)
    @settings(max_examples=60, deadline=None)
    def test_exponential_survival_monotone(self, age1, age2):
        d = Exponential(1.3)
        lo, hi = min(age1, age2), max(age1, age2)
        assert d.survival(hi) <= d.survival(lo) + 1e-12

    @given(age=ages, shape=st.floats(0.3, 3.0), scale=st.floats(0.1, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_weibull_bounds(self, age, shape, scale):
        d = Weibull(shape, scale)
        assert 0.0 <= d.survival(age) <= 1.0
        assert 0.0 <= d.integrated_survival(age) <= age + 1e-9

    @given(
        t0=st.floats(0, 100), width=st.floats(0, 100), gap=st.floats(0, 1000),
        median=st.floats(0.01, 50), sigma=st.floats(0.1, 2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_lognormal_window_fraction_unit_interval(self, t0, width, gap, median, sigma):
        d = LogNormal(median, sigma)
        frac = d.window_live_fraction(t0, t0 + width, t0 + width + gap)
        assert -1e-9 <= frac <= 1.0 + 1e-9
