"""Smoke tests: every example script runs and prints its study.

Examples are part of the public deliverable; these tests execute them
in-process (short variants where the script supports one) so they cannot
rot.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Per-iteration execution time" in out
        assert "[GC (Allocation Failure)" in out or "[Full GC" in out

    def test_gc_comparison(self, capsys):
        run_example("gc_comparison.py", ["batik"])
        out = capsys.readouterr().out
        assert "sorted by execution time" in out
        assert "pause scatter" in out

    def test_cassandra_stress_short(self, capsys):
        run_example("cassandra_stress.py", ["--short"])
        out = capsys.readouterr().out
        assert "Cassandra stress test" in out
        assert "ParallelOld" in out and "G1" in out

    def test_client_latency_short(self, capsys):
        run_example("client_latency.py", ["--duration", "900"])
        out = capsys.readouterr().out
        assert "p99.9" in out
        assert "Band statistics" in out

    def test_heap_tuning(self, capsys):
        run_example("heap_tuning.py", ["ParallelOld"])
        out = capsys.readouterr().out
        assert "heap/young sweep" in out

    def test_specjbb_scaling(self, capsys):
        run_example("specjbb_scaling.py")
        out = capsys.readouterr().out
        assert "BOPS by warehouse count" in out
        assert "HTMGC" in out

    def test_distributed_cluster(self, capsys):
        run_example("distributed_cluster.py", ["--hours", "0.25"])
        out = capsys.readouterr().out
        assert "DOWN convictions" in out

    def test_custom_study(self, capsys):
        run_example("custom_study.py")
        out = capsys.readouterr().out
        assert "Ranking (Figure 3 methodology)" in out
        assert "Custom build-then-serve workload" in out

    def test_paper_comparison(self, capsys):
        run_example("paper_comparison.py")
        out = capsys.readouterr().out
        assert "anomaly direction reproduced: True" in out
        assert "full-GC duration ratio" in out
