"""Tests for the experiment-grid orchestration API."""

import pytest

from repro.errors import ConfigError
from repro.studies import CellKey, GridSpec, GridResult, run_grid
from repro.units import GB, MB


@pytest.fixture(scope="module")
def small_grid():
    spec = GridSpec(
        benchmarks=["lusearch", "batik"],
        gcs=["ParallelOld", "Serial"],
        heaps=["1g"],
        youngs=["256m"],
        seeds=[0, 1],
        iterations=3,
    )
    return run_grid(spec)


class TestGridSpec:
    def test_size(self):
        spec = GridSpec(benchmarks=["a", "b"], gcs=["x"], heaps=[1, 2],
                        youngs=[None], seeds=[0, 1, 2])
        assert spec.size == 12

    def test_cells_cover_product(self):
        spec = GridSpec(benchmarks=["a"], gcs=["x", "y"], heaps=[1], seeds=[0])
        assert len(list(spec.cells())) == 2

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            GridSpec(benchmarks=[], gcs=["x"])

    def test_all_empty_axes_rejected(self):
        # Empty youngs/seeds used to silently yield a zero-cell grid.
        base = dict(benchmarks=["a"], gcs=["x"], heaps=[1],
                    youngs=[None], seeds=[0])
        for axis in base:
            kw = dict(base)
            kw[axis] = []
            with pytest.raises(ConfigError, match=axis):
                GridSpec(**kw)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigError):
            GridSpec(benchmarks=["a"], iterations=0)


class TestRunGrid:
    def test_all_cells_present(self, small_grid):
        assert len(small_grid.runs) == small_grid.spec.size == 8

    def test_keys_normalized(self, small_grid):
        key = next(iter(small_grid.runs))
        assert key.gc in ("ParallelOldGC", "SerialGC")
        assert key.heap == 1 * GB
        assert key.young == 256 * MB

    def test_select_filters(self, small_grid):
        cells = small_grid.select(benchmark="batik", gc="SerialGC")
        assert len(cells) == 2  # two seeds
        assert all(k.benchmark == "batik" for k, _r in cells)

    def test_mean_exec(self, small_grid):
        m = small_grid.mean_exec("lusearch", gc="ParallelOldGC")
        assert m > 0

    def test_mean_exec_no_match_rejected(self, small_grid):
        with pytest.raises(ConfigError):
            small_grid.mean_exec("nonexistent")

    def test_winners_ranking(self, small_grid):
        ranking = small_grid.winners()
        assert ranking.total_experiments == 4  # 2 benchmarks x 2 seeds
        assert sum(ranking.wins.values()) == 4

    def test_pause_summary_per_gc(self, small_grid):
        summary = small_grid.pause_summary()
        assert set(summary) == {"ParallelOldGC", "SerialGC"}
        assert summary["SerialGC"]["runs"] == 4

    def test_crashing_benchmark_recorded_not_raised(self):
        spec = GridSpec(benchmarks=["eclipse"], gcs=["Serial"], heaps=["1g"],
                        iterations=2)
        grid = run_grid(spec)
        assert len(grid.crashed_cells()) == 1
        assert grid.winners().total_experiments == 0

    def test_progress_callback(self):
        seen = []
        spec = GridSpec(benchmarks=["batik"], gcs=["Serial"], heaps=["1g"],
                        iterations=2)
        run_grid(spec, progress=seen.append)
        assert len(seen) == 1 and isinstance(seen[0], CellKey)

    def test_values_metric(self, small_grid):
        pauses = small_grid.values(lambda r: r.gc_log.count, benchmark="lusearch")
        assert len(pauses) == 4

    def test_unknown_benchmark_still_raises(self):
        spec = GridSpec(benchmarks=["no-such-benchmark"], gcs=["Serial"],
                        heaps=["1g"], iterations=1)
        with pytest.raises(ConfigError):
            run_grid(spec)


class TestExecutorInjection:
    """run_grid delegates to run_cell + executor; results stay identical."""

    def test_process_executor_matches_serial(self, small_grid):
        from repro.campaign import ProcessExecutor

        parallel = run_grid(small_grid.spec, executor=ProcessExecutor(workers=2))
        assert parallel.runs == small_grid.runs
        assert parallel.to_rows() == small_grid.to_rows()

    def test_campaign_matches_serial_run_grid(self, small_grid):
        from repro.campaign import CampaignSpec, run_campaign

        campaign = run_campaign(CampaignSpec("det", [small_grid.spec]),
                                executor="process", workers=2)
        assert campaign.grid(0).runs == small_grid.runs
        assert campaign.grid(0).winners().ordered() == small_grid.winners().ordered()

    def test_progress_callback_with_executor(self):
        from repro.campaign import ProcessExecutor

        seen = []
        spec = GridSpec(benchmarks=["batik"], gcs=["Serial"], heaps=["1g"],
                        youngs=["256m"], iterations=2)
        run_grid(spec, progress=seen.append, executor=ProcessExecutor(workers=1))
        assert len(seen) == 1 and isinstance(seen[0], CellKey)


class TestSerialization:
    def test_run_result_to_dict(self, small_grid):
        run = next(iter(small_grid.runs.values()))
        d = run.to_dict()
        assert d["gc"] in ("ParallelOldGC", "SerialGC")
        assert d["gc_log"]["pauses"] == run.gc_log.count
        import json
        json.dumps(d)  # must be JSON-serializable

    def test_grid_to_rows_sorted_and_complete(self, small_grid):
        from repro.studies import GRID_CSV_COLUMNS

        rows = small_grid.to_rows()
        assert len(rows) == len(small_grid.runs)
        assert all(len(r) == len(GRID_CSV_COLUMNS) for r in rows)
        keys = [(r[0], r[1], r[4]) for r in rows]
        assert keys == sorted(keys)

    def test_grid_to_csv(self, small_grid, tmp_path):
        import csv

        path = tmp_path / "grid.csv"
        small_grid.to_csv(path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "benchmark"
        assert len(rows) == len(small_grid.runs) + 1
