"""Tests for the DES engine: clock, event ordering, run control."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Event, Timeout


class TestClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_run_empty_queue_with_until_advances_clock(self):
        eng = Engine()
        eng.run(until=10.0)
        assert eng.now == 10.0

    def test_timeout_advances_clock(self):
        eng = Engine()
        Timeout(eng, 3.0)
        eng.run()
        assert eng.now == 3.0


class TestOrdering:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        for delay in (5.0, 1.0, 3.0):
            ev = Timeout(eng, delay, value=delay)
            ev.callbacks.append(lambda e: fired.append(e.value))
        eng.run()
        assert fired == [1.0, 3.0, 5.0]

    def test_same_time_events_fifo(self):
        eng = Engine()
        fired = []
        for tag in ("a", "b", "c"):
            ev = Timeout(eng, 1.0, value=tag)
            ev.callbacks.append(lambda e: fired.append(e.value))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        ev = Timeout(eng, 10.0, value="late")
        ev.callbacks.append(lambda e: fired.append(e.value))
        eng.run(until=5.0)
        assert fired == []
        assert eng.now == 5.0
        eng.run()
        assert fired == ["late"]

    def test_max_events_limits_processing(self):
        eng = Engine()
        fired = []
        for i in range(5):
            ev = Timeout(eng, float(i + 1), value=i)
            ev.callbacks.append(lambda e: fired.append(e.value))
        eng.run(max_events=2)
        assert len(fired) == 2


class TestScheduling:
    def test_call_at_runs_callback(self):
        eng = Engine()
        seen = []
        eng.call_at(2.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [2.5]

    def test_call_at_in_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(Event(eng), delay=-1.0)

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Engine().step()

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_delay_rejected(self, delay):
        # NaN slips past a plain `delay < 0` check (every NaN comparison
        # is False) and would poison the heapq's total order.
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(Event(eng), delay=delay)

    @pytest.mark.parametrize("when", [float("nan"), float("inf"), float("-inf")])
    def test_call_at_non_finite_rejected(self, when):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_at(when, lambda: None)

    def test_non_finite_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Engine(start_time=float("nan"))

    def test_peek_returns_next_event_time(self):
        eng = Engine()
        Timeout(eng, 7.0)
        assert eng.peek() == 7.0

    def test_peek_empty_queue(self):
        assert Engine().peek() is None


class TestHelpers:
    def test_engine_timeout_helper(self):
        eng = Engine()
        t = eng.timeout(1.5, value="x")
        assert isinstance(t, Timeout)
        eng.run()
        assert eng.now == 1.5

    def test_engine_event_helper_untriggered(self):
        eng = Engine()
        ev = eng.event()
        assert not ev.triggered
