"""Tests for the HTM-based collector (the paper's future work, §6)."""

import numpy as np
import pytest

from repro import JVM, JVMConfig, baseline_config
from repro.gc import GC_NAMES, HTMGC, GCType, create_collector
from repro.gc.registry import resolve_gc
from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.machine.costs import CostModel
from repro.units import GB, MB
from repro.workloads.dacapo import get_benchmark


def make_htm(heap_mb=256, young_mb=64):
    heap = GenerationalHeap(
        HeapConfig(heap_bytes=heap_mb * MB, young_bytes=young_mb * MB),
        n_mutator_threads=4,
    )
    return create_collector("HTM", heap, CostModel(), rng=np.random.default_rng(5))


class TestRegistration:
    def test_htm_resolvable(self):
        assert resolve_gc("htm") is GCType.HTM
        assert isinstance(make_htm(), HTMGC)

    def test_htm_not_in_paper_six(self):
        assert "HTMGC" not in GC_NAMES
        assert len(GC_NAMES) == 6


class TestPauseBehaviour:
    def test_flip_pause_is_milliseconds(self):
        c = make_htm()
        c.noise = 0.0
        c.heap.allocate(0.0, 40 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert outcome.pauses[0].duration < 0.02

    def test_flip_pause_independent_of_survivor_volume(self):
        small, big = make_htm(), make_htm()
        small.noise = big.noise = 0.0
        small.heap.allocate(0.0, 5 * MB, None, pinned=True)
        big.heap.allocate(0.0, 45 * MB, None, pinned=True)
        p_small = small.allocation_failure(1.0).pauses[0].duration
        p_big = big.allocation_failure(1.0).pauses[0].duration
        assert p_big == pytest.approx(p_small, rel=0.01)

    def test_evacuation_runs_concurrently(self):
        c = make_htm()
        c.heap.allocate(0.0, 40 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert outcome.schedule  # concurrent completion pending
        assert any(r.phase == "htm-evacuation" for r in outcome.concurrent)
        assert c.concurrent_threads_active > 0

    def test_mutator_tax_always_on_and_worse_while_evacuating(self):
        c = make_htm()
        idle_tax = c.mutator_overhead
        assert idle_tax > 0.0
        c.heap.allocate(0.0, 40 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert c.mutator_overhead > idle_tax
        # finishing the evacuation drops back to the base tax
        for delay, fn in outcome.schedule:
            fn(1.0 + delay)
        assert c.mutator_overhead == idle_tax

    def test_old_cycle_triggers_and_compacts(self):
        c = make_htm(heap_mb=512)
        garbage = c.heap.allocate_old(0.0, 50 * MB, pinned=True)
        c.heap.allocate_old(0.0, 230 * MB, pinned=True)  # occupancy > 0.6
        garbage.release()
        c.heap.fragmentation = 0.1
        c.heap.allocate(0.0, 20 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert any(r.phase == "htm-old-compaction" for r in outcome.concurrent)
        # garbage reclaimed concurrently at cycle start
        assert c.heap.old.used < 280 * MB
        for delay, fn in list(outcome.schedule):
            fn(1.0 + delay)
        assert c.heap.fragmentation == 0.0

    def test_exhaustion_fallback_is_stw_full(self):
        c = make_htm(heap_mb=100, young_mb=80)
        c.heap.allocate_old(0.0, 18 * MB, pinned=True)
        c.heap.allocate(0.0, 40 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert any(p.cause == "HTM Exhaustion" for p in outcome.pauses)
        assert c.concurrent_threads_active == 0

    def test_explicit_gc_stays_concurrent(self):
        c = make_htm()
        c.heap.allocate(0.0, 10 * MB, None, pinned=True)
        outcome = c.explicit_gc(1.0)
        assert all(p.duration < 0.05 for p in outcome.pauses)
        assert outcome.schedule


class TestEndToEnd:
    def test_dacapo_run_pauses_sub_10ms(self):
        jvm = JVM(baseline_config(gc="HTM", seed=1))
        result = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=True)
        assert not result.crashed
        assert result.gc_log.max_pause < 0.02
        assert result.gc_log.full_count == 0

    def test_throughput_tax_visible(self):
        """HTM trades throughput for pauses: slower than ParallelOld when
        full GCs are NOT forced (where ParallelOld shines)."""
        import numpy as np

        def median_exec(gc):
            times = []
            for seed in (1, 2, 3):
                jvm = JVM(baseline_config(gc=gc, seed=seed))
                r = jvm.run(get_benchmark("xalan"), iterations=10, system_gc=False)
                times.append(r.execution_time)
            return float(np.median(times))

        assert median_exec("HTM") > median_exec("ParallelOld")

    def test_cassandra_stress_no_long_pauses(self):
        from repro.cassandra import CassandraServer, stress_config

        jvm = JVM(JVMConfig(gc="HTM", heap=64 * GB, young=12 * GB, seed=3))
        server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
        result = jvm.run(server, duration=3600.0, ops_per_second=1350.0)
        assert not result.crashed
        assert result.gc_log.full_count == 0
        assert result.gc_log.max_pause < 0.05  # milliseconds, not minutes


class TestHumongousRouting:
    def test_g1_threshold_is_half_region(self):
        from repro.heap.regions import RegionTable

        c = make_htm  # reuse factory style below
        from repro.gc import create_collector
        from repro.heap.heap import GenerationalHeap, HeapConfig
        from repro.machine.costs import CostModel
        import numpy as np

        heap = GenerationalHeap(HeapConfig(heap_bytes=16 * GB, young_bytes=4 * GB))
        g1 = create_collector("G1", heap, CostModel(), rng=np.random.default_rng(0))
        table = RegionTable.for_heap(16 * GB)
        assert g1.humongous_threshold() == table.humongous_threshold

    def test_stock_threshold_is_eden_fraction(self):
        import numpy as np
        from repro.gc import create_collector
        from repro.heap.heap import GenerationalHeap, HeapConfig
        from repro.machine.costs import CostModel

        heap = GenerationalHeap(HeapConfig(heap_bytes=16 * GB, young_bytes=4 * GB))
        po = create_collector("ParallelOld", heap, CostModel(),
                              rng=np.random.default_rng(0))
        assert po.humongous_threshold() == pytest.approx(0.8 * heap.eden.capacity)

    def test_g1_routes_humongous_objects_to_old(self, tiny_topology):
        from repro import JVM, JVMConfig
        from repro.units import MB
        from tests.test_jvm_threads import ScriptedWorkload

        cfg = JVMConfig(gc="G1", heap=2 * GB, young=512 * MB,
                        topology=tiny_topology, seed=1)
        jvm = JVM(cfg)
        threshold = jvm.collector.humongous_threshold()

        def script(j, result):
            def body(ctx):
                # one humongous object: straight to old
                yield from ctx.allocate(threshold * 1.5, None,
                                        n_objects=1, pinned=True)
                result.extras["old_after_humongous"] = j.heap.old.used
                # a same-sized batch of small objects: lands in eden
                yield from ctx.allocate(threshold * 1.5, None,
                                        n_objects=10_000, pinned=True)
                result.extras["eden_after_batch"] = j.heap.eden.used

            yield from j.join([j.spawn_mutator(body)])

        result = jvm.run(ScriptedWorkload(script))
        assert result.extras["old_after_humongous"] == pytest.approx(threshold * 1.5)
        assert result.extras["eden_after_batch"] == pytest.approx(threshold * 1.5)
