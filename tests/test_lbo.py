"""LBO cost distillation: config validation, determinism, caching.

The micro-grid used here (2 collectors x 3 heaps x 2 seeds on xalan,
18 cells with the implicit EpsilonGC baseline) is the same recipe the
CI ``lbo-smoke`` job runs, so these tests and the workflow enforce the
same contract: 100% cache hits on a rerun and byte-identical JSON.
"""

import json

import pytest

from repro.analysis.lbo import (IDEAL_GC, LBOConfig, LBOStudyResult,
                                nearest_rank, run_lbo_study)
from repro.campaign.store import ResultStore
from repro.errors import ConfigError
from repro.units import GB


MICRO = dict(benchmarks=("xalan",), gcs=("ParallelOld", "ZGC"),
             heaps=("4g", "8g", "16g"), seeds=(1, 2), iterations=4)


class TestNearestRank:
    def test_empty(self):
        assert nearest_rank([], 99.0) == 0.0

    def test_single(self):
        assert nearest_rank([7.0], 50.0) == 7.0
        assert nearest_rank([7.0], 99.9) == 7.0

    def test_textbook(self):
        # Nearest-rank on 10 sorted values: P50 -> 5th value (k=4).
        vals = [float(i) for i in range(1, 11)]
        assert nearest_rank(vals, 50.0) == 5.0
        assert nearest_rank(vals, 90.0) == 9.0
        assert nearest_rank(vals, 99.0) == 10.0
        assert nearest_rank(vals, 100.0) == 10.0

    def test_no_interpolation(self):
        # Byte-stability requirement: the result is always a member of
        # the input, never an interpolated float.
        vals = [0.1, 0.2, 0.7]
        for q in (1.0, 33.0, 50.0, 66.0, 90.0, 99.9):
            assert nearest_rank(vals, q) in vals


class TestLBOConfig:
    def test_empty_axes_rejected(self):
        for field in ("benchmarks", "gcs", "heaps", "seeds"):
            with pytest.raises(ConfigError):
                LBOConfig(**{**MICRO, field: ()})

    def test_ideal_gc_rejected_in_gcs(self):
        with pytest.raises(ConfigError):
            LBOConfig(**{**MICRO, "gcs": ("ZGC", "EpsilonGC")})

    def test_unknown_gc_rejected(self):
        with pytest.raises(ConfigError):
            LBOConfig(**{**MICRO, "gcs": ("TrainGC",)})

    def test_heaps_parsed_and_sorted(self):
        config = LBOConfig(**{**MICRO, "heaps": ("16g", "4g", "8g")})
        assert config.heaps == (4 * GB, 8 * GB, 16 * GB)

    def test_gc_aliases_resolve(self):
        config = LBOConfig(**{**MICRO, "gcs": ("zgc", "shenandoah")})
        assert config.gcs == ("ZGC", "ShenandoahGC")

    def test_cell_count(self):
        config = LBOConfig(**MICRO)
        # (2 collectors + ideal baseline) x 1 benchmark x 3 heaps x 2 seeds
        assert len(list(config.cells())) == 18


class TestStudy:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return ResultStore(str(tmp_path_factory.mktemp("lbo-store")))

    @pytest.fixture(scope="class")
    def cold(self, store):
        return run_lbo_study(LBOConfig(**MICRO), store=store)

    def test_cold_run_has_no_hits(self, cold):
        assert cold.cells_total == 18
        assert cold.cache_hits == 0

    def test_warm_run_is_all_hits_and_byte_identical(self, store, cold):
        warm = run_lbo_study(LBOConfig(**MICRO), store=store)
        assert warm.cache_hits == warm.cells_total == 18
        assert warm.to_json() == cold.to_json()

    def test_cache_accounting_not_in_json(self, cold):
        payload = json.loads(cold.to_json())
        assert "cache_hits" not in payload
        assert "cells_total" not in payload

    def test_ranking_reproduces_distilling_result(self, cold):
        """ZGC's pause tail sits orders of magnitude below ParallelOld's
        (the ranking itself orders by LBO; pause percentiles carry the
        noise-immune qualitative result the CI smoke job asserts)."""
        zgc = cold.distillate("ZGC")
        po = cold.distillate("ParallelOld")
        assert zgc.pause_percentiles["p99.9"] < po.pause_percentiles["p99.9"]
        assert zgc.max_pause < po.max_pause / 10

    def test_lbo_floor_and_heap(self, cold):
        for d in cold.distillates:
            if d.lbo is not None:
                assert d.lbo >= 0.0
                assert d.lbo_heap in cold.config.heaps
                assert d.lbo == pytest.approx(
                    max(0.0, min(v for v in d.overheads.values()
                                 if v is not None)))

    def test_ranking_order(self, cold):
        lbos = [cold.distillate(gc).lbo for gc in cold.ranking()]
        valid = [v for v in lbos if v is not None]
        assert valid == sorted(valid)

    def test_json_round_trip(self, cold):
        clone = LBOStudyResult.from_dict(json.loads(cold.to_json()))
        assert clone.to_json() == cold.to_json()
        assert clone.render() == cold.render()

    def test_render_mentions_every_collector(self, cold):
        table = cold.render()
        for gc in ("ZGC", "ParallelOldGC", IDEAL_GC):
            assert (gc in table) == (gc != IDEAL_GC)


class TestCrashedCells:
    def test_crashes_cached_and_reported(self, tmp_path):
        """xalan at 1g crashes ZGC deterministically; the crash is cached
        (a crash at these coordinates is deterministic) and the 1g rung
        is excluded from the min-over-heaps."""
        config = LBOConfig(benchmarks=("xalan",), gcs=("ZGC",),
                           heaps=("1g", "16g"), seeds=(1,), iterations=3)
        store = ResultStore(str(tmp_path))
        cold = run_lbo_study(config, store=store)
        d = cold.distillates[0]
        assert d.crashed_cells > 0
        assert d.overheads["%.0f" % (1 * GB)] is None
        assert d.lbo_heap == 16 * GB
        warm = run_lbo_study(config, store=store)
        assert warm.cache_hits == warm.cells_total
        assert warm.to_json() == cold.to_json()
