"""Tests for GC log records, aggregation, formatting and parsing."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.gc.stats import ConcurrentRecord, GCLog, PauseRecord
from repro.jvm.gclog import format_gc_log, format_pause, parse_gc_log
from repro.units import GB, MB


def sample_log():
    log = GCLog()
    log.record(PauseRecord(1.0, 0.25, "young", "Allocation Failure", "ParallelOldGC",
                           heap_used_before=800 * MB, heap_used_after=200 * MB))
    log.record(PauseRecord(5.0, 1.5, "full", "System.gc()", "ParallelOldGC",
                           heap_used_before=900 * MB, heap_used_after=150 * MB))
    log.record(PauseRecord(9.0, 0.10, "young", "Allocation Failure", "ParallelOldGC"))
    log.record_concurrent(ConcurrentRecord(2.0, 3.0, "concurrent-mark", "ParallelOldGC"))
    return log


class TestGCLogAggregates:
    def test_counts(self):
        log = sample_log()
        assert log.count == 3 and log.full_count == 1

    def test_total_and_max(self):
        log = sample_log()
        assert log.total_pause == pytest.approx(1.85)
        assert log.max_pause == 1.5

    def test_avg(self):
        assert sample_log().avg_pause == pytest.approx(1.85 / 3)

    def test_empty_log_statistics(self):
        log = GCLog()
        assert log.avg_pause == 0.0 and log.max_pause == 0.0

    def test_durations_and_starts_arrays(self):
        log = sample_log()
        np.testing.assert_allclose(log.durations(), [0.25, 1.5, 0.10])
        np.testing.assert_allclose(log.starts(), [1.0, 5.0, 9.0])

    def test_intervals_shape(self):
        assert sample_log().intervals().shape == (3, 2)

    def test_empty_intervals_shape(self):
        assert GCLog().intervals().shape == (0, 2)

    def test_between_filters(self):
        sub = sample_log().between(4.0, 10.0)
        assert sub.count == 2

    def test_of_kind(self):
        assert sample_log().of_kind("young").count == 2
        assert sample_log().of_kind("full").count == 1

    def test_pause_end(self):
        assert sample_log().pauses[0].end == pytest.approx(1.25)

    def test_summary_mentions_counts(self):
        assert "3 pauses (1 full)" in sample_log().summary()


class TestFormatParseRoundTrip:
    def test_round_trip(self):
        log = sample_log()
        text = format_gc_log(log, 16 * GB)
        parsed = parse_gc_log(text)
        assert parsed.count == log.count
        assert parsed.full_count == log.full_count
        for orig, back in zip(log.pauses, parsed.pauses):
            assert back.start == pytest.approx(orig.start, abs=1e-3)
            assert back.duration == pytest.approx(orig.duration, abs=1e-4)
            assert back.kind == orig.kind
            assert back.cause == orig.cause

    def test_full_gc_marked_in_text(self):
        log = sample_log()
        text = format_gc_log(log, 16 * GB)
        assert "[Full GC (System.gc())" in text

    def test_format_single_pause(self):
        line = format_pause(sample_log().pauses[0], 16 * GB)
        assert line.startswith("1.000: [GC (Allocation Failure)")
        assert "0.2500000 secs" in line  # 0.1 µs precision (round-trip safe)

    def test_parse_skips_blank_lines(self):
        text = format_gc_log(sample_log(), 16 * GB) + "\n\n"
        assert parse_gc_log(text).count == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_gc_log("this is not a gc log")

    def test_parse_empty_text(self):
        assert parse_gc_log("").count == 0
