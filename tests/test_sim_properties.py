"""Property-based tests for the DES kernel and heap over long horizons."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.heap.lifetime import Exponential, Weibull
from repro.sim import Engine, Timeout
from repro.units import MB


class TestEngineProperties:
    @given(delays=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            ev = Timeout(eng, d, value=d)
            ev.callbacks.append(lambda e: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_clock_ends_at_latest_event(self, delays):
        eng = Engine()
        for d in delays:
            Timeout(eng, d)
        eng.run()
        assert eng.now == pytest.approx(max(delays))

    @given(
        delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
        cut=st.floats(0.0, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_until_is_a_prefix(self, delays, cut):
        """Running to `until` then to completion fires exactly the same
        events, in the same order, as one uninterrupted run."""
        def collect(two_phase):
            eng = Engine()
            fired = []
            for d in delays:
                ev = Timeout(eng, d, value=d)
                ev.callbacks.append(lambda e: fired.append(e.value))
            if two_phase:
                eng.run(until=cut)
                eng.run()
            else:
                eng.run()
            return fired

        assert collect(True) == collect(False)

    @given(n_procs=st.integers(1, 10), steps=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_processes_all_complete(self, n_procs, steps):
        eng = Engine()
        done = []

        def proc(pid):
            for s in range(steps):
                yield eng.timeout(0.5 + pid * 0.01)
            done.append(pid)

        procs = [eng.process(proc(i)) for i in range(n_procs)]
        eng.run()
        assert sorted(done) == list(range(n_procs))
        assert all(not p.is_alive for p in procs)


class TestHeapLongHorizon:
    @given(
        batches=st.lists(st.floats(1.0, 20.0), min_size=3, max_size=12),
        tau=st.floats(0.05, 5.0),
        threshold=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_cycle_conservation(self, batches, tau, threshold):
        """Over any sequence of allocations and minor collections,
        allocated == freed + resident (cohort bytes are conserved)."""
        heap = GenerationalHeap(
            HeapConfig(heap_bytes=512 * MB, young_bytes=128 * MB)
        )
        dist = Exponential(tau)
        allocated = 0.0
        freed = 0.0
        t = 0.0
        for mb in batches:
            t += 0.5
            n = mb * MB
            heap.allocate(t, n, dist)
            allocated += n
            vol = heap.minor_collection(t + 0.1, threshold)
            freed += vol.eden_freed + vol.survivor_freed
        resident = (
            sum(c.resident for c in heap.survivor_cohorts)
            + sum(c.resident for c in heap.old_cohorts)
        )
        assert freed + resident == pytest.approx(allocated, rel=1e-6)

    @given(
        batches=st.lists(st.floats(1.0, 20.0), min_size=2, max_size=10),
        shape=st.floats(0.4, 1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_after_minors_reclaims_everything_dead(self, batches, shape):
        heap = GenerationalHeap(
            HeapConfig(heap_bytes=512 * MB, young_bytes=128 * MB)
        )
        dist = Weibull(shape, 0.5)
        t = 0.0
        for mb in batches:
            t += 1.0
            heap.allocate(t, mb * MB, dist)
            heap.minor_collection(t + 0.1, 3)
        heap.full_collection(t + 10_000.0)  # everything short-lived is dead
        assert heap.old.used <= 1 * MB  # only rounding residue may remain
        assert heap.young_used == 0.0

    @given(
        young_frac=st.floats(0.1, 0.8),
        survivor_ratio=st.integers(2, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_geometry_always_partitions_heap(self, young_frac, survivor_ratio):
        cfg = HeapConfig(
            heap_bytes=256 * MB,
            young_bytes=256 * MB * young_frac,
            survivor_ratio=survivor_ratio,
        )
        total = cfg.eden_bytes + 2 * cfg.survivor_bytes + cfg.old_bytes
        assert total == pytest.approx(256 * MB)

    @given(
        pinned_mb=st.floats(1.0, 30.0),
        garbage_mb=st.floats(1.0, 30.0),
        sweeps=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_sweep_never_touches_pinned(self, pinned_mb, garbage_mb, sweeps):
        heap = GenerationalHeap(
            HeapConfig(heap_bytes=512 * MB, young_bytes=64 * MB)
        )
        heap.allocate_old(0.0, pinned_mb * MB, pinned=True)
        dead = heap.allocate_old(0.0, garbage_mb * MB, pinned=True)
        dead.release()
        for i in range(sweeps):
            heap.sweep_old(float(i + 1))
        assert heap.old.used == pytest.approx(pinned_mb * MB)
