"""repro.energy: placement policies, the joules ledger, the Pareto study.

The micro-grid used by ``TestStudy`` (1 collector x 2 placements x
asym-hybrid x 2 seeds on xalan) is a subset of the CI ``energy-smoke``
recipe, so these tests and the workflow enforce the same contract:
100% cache hits on a rerun, byte-identical JSON, and the qualitative
ordering P-pinned tails < E-pinned tails while E-pinned GC joules <
P-pinned GC joules.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.store import ResultStore, merge_stores
from repro.energy.model import (ENERGY_COUNTERS, ENERGY_PHASES, GC_PHASE_MAP,
                                EnergyAccount, EnergyModel, UJ_PER_J,
                                energy_section)
from repro.energy.placement import (ADAPTIVE, PIN_E, PIN_P, PLACEMENT_NAMES,
                                    GCPlacementPolicy, apply_placement,
                                    effective_gc_threads, gc_thread_cap,
                                    resolve_placement)
from repro.energy.study import (ComboResult, EnergyStudyConfig,
                                EnergyStudyResult, pareto_frontier,
                                run_energy_study)
from repro.errors import ConfigError
from repro.gc import ALL_GC_NAMES
from repro.jvm import JVM, JVMConfig
from repro.machine import CostModel
from repro.machine.topology import ASYM_HYBRID, PAPER_SERVER
from repro.units import GB
from repro.workloads.dacapo import get_benchmark


class TestPlacementResolution:
    def test_names_and_aliases(self):
        assert resolve_placement("p-cores") is PIN_P
        assert resolve_placement("P") is PIN_P
        assert resolve_placement("pin-e") is PIN_E
        assert resolve_placement("hybrid") is ADAPTIVE
        assert resolve_placement(ADAPTIVE) is ADAPTIVE

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            resolve_placement("big-cores")

    def test_bad_selector_rejected(self):
        with pytest.raises(ConfigError):
            GCPlacementPolicy(name="x", young="medium")

    def test_placement_names_sorted(self):
        assert list(PLACEMENT_NAMES) == sorted(PLACEMENT_NAMES)


class TestPlacementRates:
    def test_homogeneous_is_exact_noop(self):
        """Byte-identity cornerstone: every policy resolves to scale 1.0
        on a single-class machine, so the cost model is bit-unchanged."""
        costs = CostModel(topology=PAPER_SERVER)
        for name in PLACEMENT_NAMES:
            applied = apply_placement(costs, name)
            assert applied == costs

    def test_asym_rates(self):
        p = PIN_P.rates(ASYM_HYBRID)
        e = PIN_E.rates(ASYM_HYBRID)
        a = ADAPTIVE.rates(ASYM_HYBRID)
        assert p == (1.0, 1.0, 1.0)
        assert e[0] == e[1] == e[2] < 1.0
        assert a == (1.0, e[1], e[2])

    def test_rates_slow_stw_phases(self):
        costs = apply_placement(CostModel(topology=ASYM_HYBRID), "e-cores")
        base = CostModel(topology=ASYM_HYBRID)
        assert (costs.stw_duration(n_threads=4, marked=1 * GB)
                > base.stw_duration(n_threads=4, marked=1 * GB))


class TestThreadCap:
    def test_homogeneous_cap_is_core_count(self):
        for name in PLACEMENT_NAMES:
            assert gc_thread_cap(PAPER_SERVER, name) == 48

    def test_asym_caps(self):
        assert gc_thread_cap(ASYM_HYBRID, "p-cores") == 8
        assert gc_thread_cap(ASYM_HYBRID, "e-cores") == 16
        # adaptive pins young on P (8 cores): the shared pool is bounded
        # by the smallest STW class.
        assert gc_thread_cap(ASYM_HYBRID, "adaptive") == 8

    def test_effective_threads_ergonomics_unchanged_without_policy(self):
        assert effective_gc_threads(PAPER_SERVER, None) == 8 + (48 - 8) * 5 // 8

    def test_effective_threads_capped_by_placement(self):
        assert effective_gc_threads(ASYM_HYBRID, PIN_P) == 8
        assert effective_gc_threads(ASYM_HYBRID, PIN_E) == 16

    def test_explicit_override_wins(self):
        assert effective_gc_threads(ASYM_HYBRID, PIN_P, 12) == 12


class TestEnergyAccount:
    def test_unknown_phase_rejected(self):
        with pytest.raises(ConfigError):
            EnergyAccount().add_uj("nap", "P", 1)

    def test_round_trip(self):
        a = EnergyAccount()
        a.add_uj("stw", "P", 123)
        a.add_uj("idle", "E", 456)
        assert EnergyAccount.from_dict(a.to_dict()) == a

    def test_gc_uj_is_stw_plus_concurrent(self):
        a = EnergyAccount()
        a.add_uj("stw", "P", 10)
        a.add_uj("concurrent", "E", 5)
        a.add_uj("mutator", "P", 100)
        assert a.gc_uj == 15
        assert a.joules() == pytest.approx(115 / UJ_PER_J)

    entries = st.lists(
        st.tuples(st.sampled_from(ENERGY_PHASES),
                  st.sampled_from(["P", "E", "uniform"]),
                  st.integers(0, 10**12)),
        max_size=20)

    @given(xs=entries, ys=entries, zs=entries)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative_and_commutative(self, xs, ys, zs):
        def acct(entries):
            a = EnergyAccount()
            for phase, cls, uj in entries:
                a.add_uj(phase, cls, uj)
            return a

        left = acct(xs).merge(acct(ys)).merge(acct(zs))
        right = acct(xs).merge(acct(ys).merge(acct(zs)))
        swapped = acct(zs).merge(acct(xs)).merge(acct(ys))
        assert left == right == swapped
        assert left.items() == right.items()


class TestPhaseMap:
    def test_every_collector_has_a_mapping(self):
        # The nightly registry guard asserts the same invariant; keeping
        # it in the suite means a new collector fails fast locally.
        assert sorted(set(ALL_GC_NAMES) - set(GC_PHASE_MAP)) == []

    def test_buckets_are_young_or_old(self):
        for gc, kinds in GC_PHASE_MAP.items():
            for kind, bucket in kinds.items():
                assert bucket in ("young", "old"), (gc, kind)

    def test_unknown_kind_defaults_to_old(self):
        model = EnergyModel(topology=PAPER_SERVER, collector="G1GC",
                            mutator_threads=4, young_threads=4,
                            old_threads=4, conc_threads=1)
        assert model.work_for("vm-op") == "old"
        assert model.work_for("brand-new-kind") == "old"


class TestEnergySection:
    def test_derived_figures(self):
        counters = {"energy.mutator_uj": 2_000_000,
                    "energy.stw_uj": 500_000,
                    "energy.concurrent_uj": 250_000,
                    "energy.idle_uj": 1_000_000}
        section = energy_section(counters)
        assert section["gc_j"] == pytest.approx(0.75)
        assert section["total_j"] == pytest.approx(3.75)
        assert section["phases_j"]["mutator"] == pytest.approx(2.0)

    def test_counter_names_cover_phases(self):
        assert len(ENERGY_COUNTERS) == len(ENERGY_PHASES)
        for phase in ENERGY_PHASES:
            assert f"energy.{phase}_uj" in ENERGY_COUNTERS


def _run(gc, placement, seed=1, topology="asym-hybrid"):
    config = JVMConfig(gc=gc, heap=8 * GB, seed=seed, topology=topology,
                       gc_placement=placement)
    result = JVM(config).run(get_benchmark("xalan"), iterations=3,
                             system_gc=False)
    assert not result.crashed
    return result, EnergyModel.for_config(config).account_run(result)


class TestAccountRun:
    @pytest.fixture(scope="class")
    def pinned(self):
        p = _run("ParallelOldGC", "p-cores")
        e = _run("ParallelOldGC", "e-cores")
        return p, e

    def test_idle_baseline_exact(self, pinned):
        (result, account), _ = pinned
        expected = sum(c.count * c.idle_w for c in ASYM_HYBRID.core_classes)
        expected_uj = int(round(expected * result.execution_time * UJ_PER_J))
        assert account.uj("idle") == expected_uj

    def test_all_phases_present(self, pinned):
        (_, account), _ = pinned
        for phase in ("mutator", "stw", "idle"):
            assert account.uj(phase) > 0

    def test_p_pinned_charges_p_class_first(self, pinned):
        (_, p_account), (_, e_account) = pinned
        # 8 GC threads fit entirely on the 8 P-cores / 16 E-cores.
        assert p_account.uj("stw", "E") == 0
        assert e_account.uj("stw", "P") == 0

    def test_pareto_orderings(self, pinned):
        """The CI energy-smoke assertions, in-suite: P-pinning buys the
        shorter tail, E-pinning the lower GC energy."""
        (p_res, p_account), (e_res, e_account) = pinned
        assert max(x.duration for x in p_res.gc_log.pauses) < \
            max(x.duration for x in e_res.gc_log.pauses)
        assert e_account.gc_uj < p_account.gc_uj

    def test_account_is_deterministic(self):
        a = _run("ParallelOldGC", "adaptive")[1]
        b = _run("ParallelOldGC", "adaptive")[1]
        assert a == b


class TestStudyConfig:
    def test_empty_axes_rejected(self):
        for axis in ("benchmarks", "gcs", "placements", "topologies",
                     "seeds"):
            with pytest.raises(ConfigError):
                EnergyStudyConfig(**{axis: ()})

    def test_axes_normalised(self):
        config = EnergyStudyConfig(gcs=("CMS",), placements=("P",),
                                   topologies=(ASYM_HYBRID,), heap="8g",
                                   seeds=(2, 1))
        assert config.gcs == ("ConcMarkSweepGC",)
        assert config.placements == ("p-cores",)
        assert config.topologies == ("asym-hybrid",)
        assert config.heap == 8 * GB
        assert config.seeds == (1, 2)

    def test_cell_count(self):
        config = EnergyStudyConfig(gcs=("ParallelOld",),
                                   placements=("p-cores", "e-cores"),
                                   seeds=(1, 2))
        assert len(config.cells()) == 4


class TestParetoFrontier:
    def _combo(self, gc, placement, p999, j_per_gb):
        c = ComboResult(topology="asym-hybrid", gc=gc, placement=placement,
                        pause_percentiles={"p99.9": p999},
                        allocated_bytes=1 * GB)
        c.energy.add_uj("stw", "P", int(j_per_gb * UJ_PER_J))
        return c

    def test_dominated_point_excluded(self):
        a = self._combo("A", "p-cores", 0.1, 10.0)
        b = self._combo("B", "e-cores", 0.2, 5.0)
        dominated = self._combo("C", "adaptive", 0.3, 12.0)
        front = pareto_frontier([a, b, dominated])
        assert [c.gc for c in front] == ["A", "B"]

    def test_crashed_combos_excluded(self):
        a = self._combo("A", "p-cores", 0.1, 10.0)
        crashed = ComboResult(topology="asym-hybrid", gc="B",
                              placement="e-cores",
                              pause_percentiles={"p99.9": 0.0})
        assert pareto_frontier([a, crashed]) == [a]


MICRO = dict(benchmarks=("xalan",), gcs=("ParallelOldGC",),
             placements=("p-cores", "e-cores"), topologies=("asym-hybrid",),
             heap=8 * GB, seeds=(1, 2), iterations=3)


class TestStudy:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        return ResultStore(str(tmp_path_factory.mktemp("energy-store")))

    @pytest.fixture(scope="class")
    def cold(self, store):
        return run_energy_study(EnergyStudyConfig(**MICRO), store=store)

    def test_cold_run_has_no_hits(self, cold):
        assert cold.cells_total == 4
        assert cold.cache_hits == 0

    def test_warm_run_is_all_hits_and_byte_identical(self, store, cold):
        warm = run_energy_study(EnergyStudyConfig(**MICRO), store=store)
        assert warm.cache_hits == warm.cells_total == 4
        assert warm.to_json() == cold.to_json()

    def test_cache_accounting_not_in_json(self, cold):
        payload = json.loads(cold.to_json())
        assert "cache_hits" not in payload
        assert "cells_total" not in payload

    def test_orderings(self, cold):
        p = cold.combo("asym-hybrid", "ParallelOldGC", "p-cores")
        e = cold.combo("asym-hybrid", "ParallelOldGC", "e-cores")
        assert p.pause_percentiles["p99.9"] < e.pause_percentiles["p99.9"]
        assert e.energy.gc_uj < p.energy.gc_uj
        assert e.gc_j_per_gb < p.gc_j_per_gb

    def test_both_pins_on_frontier(self, cold):
        front = pareto_frontier(cold.combos)
        assert {c.placement for c in front} == {"p-cores", "e-cores"}

    def test_json_round_trip(self, cold):
        clone = EnergyStudyResult.from_dict(json.loads(cold.to_json()))
        assert clone.to_json() == cold.to_json()
        assert clone.render() == cold.render()

    def test_render_stars_frontier(self, cold):
        assert "*" in cold.render()

    def test_energy_folds_exactly_under_merge_stores(self, tmp_path, cold):
        """Shard the grid per-seed, merge the shards, and re-run against
        the merged store: pure cache hits, byte-identical JSON — the
        integer ledger cannot drift under any fold order."""
        shards = []
        for seed in MICRO["seeds"]:
            shard = ResultStore(str(tmp_path / f"shard-{seed}"))
            run_energy_study(
                EnergyStudyConfig(**{**MICRO, "seeds": (seed,)}),
                store=shard)
            shards.append(shard)
        merged = ResultStore(str(tmp_path / "merged"))
        merge_stores(shards, merged)
        replay = run_energy_study(EnergyStudyConfig(**MICRO), store=merged)
        assert replay.cache_hits == replay.cells_total == 4
        assert replay.to_json() == cold.to_json()
