"""Tests for the analysis package (Tables 2-8 statistics)."""

import numpy as np
import pytest

from repro.analysis.latency import (
    LatencyBandStats,
    gc_overlap_fraction,
    latency_band_stats,
)
from repro.analysis.pauses import pause_scatter, pause_stats
from repro.analysis.ranking import rank_by_wins
from repro.analysis.report import render_series, render_table
from repro.analysis.stability import rsd, stability_table
from repro.analysis.summary import GCVerdict, qualitative_summary
from repro.analysis.tlab import TLABInfluence, classify_tlab, compare
from repro.errors import ConfigError
from repro.gc.stats import GCLog, PauseRecord


class TestRSD:
    def test_constant_series_zero(self):
        assert rsd([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        assert rsd([9.0, 11.0]) == pytest.approx(np.std([9, 11], ddof=1) / 10.0)

    def test_single_value_nan(self):
        assert np.isnan(rsd([1.0]))

    def test_zero_mean_nan(self):
        assert np.isnan(rsd([-1.0, 1.0]))

    def test_stability_table_rows(self):
        class R:
            def __init__(self, f, t):
                self.final_iteration_time = f
                self.execution_time = t

        rows = stability_table(
            {"x": [R(1.0, 10.0), R(1.1, 10.2)]}, crashed=["eclipse"]
        )
        assert rows[0].benchmark == "eclipse" and rows[0].crashed
        assert not rows[0].stable
        assert rows[1].benchmark == "x"
        assert rows[1].stable  # well under 5 %

    def test_stability_criterion_one_of_two(self):
        from repro.analysis.stability import StabilityRow

        row = StabilityRow("batik", rsd_final_pct=11.2, rsd_total_pct=3.6)
        assert row.stable  # the paper accepts batik on the total-time metric

    def test_stability_empty_runs_rejected(self):
        with pytest.raises(ConfigError):
            stability_table({"x": []})


class TestPauseStats:
    def _log(self):
        log = GCLog()
        log.record(PauseRecord(1.0, 0.2, "young", "Allocation Failure", "X"))
        log.record(PauseRecord(2.0, 1.0, "full", "System.gc()", "X"))
        return log

    def test_row_format(self):
        stats = pause_stats(self._log(), 10.0)
        assert stats.row()[0] == "2(1)"
        assert stats.row()[1] == pytest.approx(0.6)

    def test_pause_fraction(self):
        stats = pause_stats(self._log(), 10.0)
        assert stats.pause_fraction == pytest.approx(0.12)

    def test_scatter_series(self):
        xs, ys = pause_scatter(self._log())
        np.testing.assert_allclose(xs, [1.0, 2.0])
        np.testing.assert_allclose(ys, [0.2, 1.0])


class TestTLABClassification:
    def test_neutral_within_band(self):
        assert classify_tlab(100.0, 103.0) is TLABInfluence.NEUTRAL

    def test_positive_when_tlab_clearly_faster(self):
        assert classify_tlab(100.0, 110.0) is TLABInfluence.POSITIVE

    def test_negative_when_tlab_clearly_slower(self):
        assert classify_tlab(110.0, 100.0) is TLABInfluence.NEGATIVE

    def test_band_is_five_percent_of_average(self):
        # avg=100, deviation=5: delta of exactly 5 stays neutral
        assert classify_tlab(97.5, 102.5) is TLABInfluence.NEUTRAL
        assert classify_tlab(97.0, 103.1) is TLABInfluence.POSITIVE

    def test_custom_band(self):
        assert classify_tlab(100.0, 108.0, band=0.10) is TLABInfluence.NEUTRAL

    def test_compare_record(self):
        c = compare("xalan", "G1GC", 110.0, 100.0)
        assert c.influence is TLABInfluence.NEGATIVE
        assert c.benchmark == "xalan"

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError):
            classify_tlab(-1.0, 1.0)


class TestRanking:
    def test_winner_counted(self):
        result = rank_by_wins({
            ("h2", 1, 1): {"A": 10.0, "B": 12.0},
            ("h2", 2, 1): {"A": 11.0, "B": 9.0},
            ("pmd", 1, 1): {"A": 5.0, "B": 6.0},
        })
        assert result.wins == {"A": 2, "B": 1}
        assert result.percentage("A") == pytest.approx(100 * 2 / 3)

    def test_zero_win_gc_omitted_from_bars(self):
        result = rank_by_wins({
            ("x", 1, 1): {"A": 1.0, "G1": 2.0},
        })
        names = [gc for gc, _pct in result.ordered()]
        assert "G1" not in names  # the paper's "no column for G1"

    def test_ordered_descending(self):
        result = rank_by_wins({
            (i,): {"A": 1.0 if i < 3 else 2.0, "B": 1.5} for i in range(4)
        })
        pcts = [p for _gc, p in result.ordered()]
        assert pcts == sorted(pcts, reverse=True)

    def test_empty_experiment_rejected(self):
        with pytest.raises(ConfigError):
            rank_by_wins({("x",): {}})


class TestLatencyBands:
    def _trace(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 1000, 20_000))
        lat = 1.0 + rng.gamma(2.0, 0.1, 20_000)
        pauses = np.array([[100.0, 101.0], [500.0, 502.0]])
        # inflate ops inside pauses
        for start, end in pauses:
            mask = (times >= start) & (times < end)
            lat[mask] += (end - times[mask]) * 1000.0
        return times, lat, pauses

    def test_basic_stats(self):
        times, lat, pauses = self._trace()
        stats = latency_band_stats(times, lat, pauses)
        assert stats.min_ms > 0
        assert stats.max_ms > 100
        assert stats.avg_ms > 1.0

    def test_high_bands_fully_gc_attributed(self):
        times, lat, pauses = self._trace()
        stats = latency_band_stats(times, lat, pauses)
        high = {b.label: b for b in stats.bands if b.label.startswith(">")}
        assert high, "expected >2x bands"
        # the paper's key observation: the moderate high bands (where both
        # pauses produce qualifying operations) are 100 % GC-attributed
        for label in (">2x AVG", ">4x AVG", ">8x AVG", ">16x AVG"):
            assert high[label].pct_gcs == pytest.approx(100.0), label

    def test_band_labels_double(self):
        times, lat, pauses = self._trace()
        stats = latency_band_stats(times, lat, pauses)
        labels = [b.label for b in stats.bands]
        assert labels[0] == "0.5x-1.5x AVG"
        assert labels[1] == ">2x AVG" and labels[2] == ">4x AVG"

    def test_no_pauses_zero_gc_percent(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, 1000))
        lat = np.ones(1000)
        stats = latency_band_stats(times, lat, np.zeros((0, 2)))
        assert all(b.pct_gcs == 0.0 for b in stats.bands)

    def test_rows_flatten(self):
        times, lat, pauses = self._trace()
        rows = latency_band_stats(times, lat, pauses).rows()
        assert rows[0][0] == "AVG(ms)"
        assert any("%GCs" in label for label, _v in rows)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            latency_band_stats(np.array([]), np.array([]), np.zeros((0, 2)))

    def test_gc_overlap_fraction_full_attribution(self):
        times, lat, pauses = self._trace()
        assert gc_overlap_fraction(times, lat, pauses) == pytest.approx(1.0)

    def test_gc_overlap_fraction_no_pauses(self):
        times = np.array([1.0, 2.0])
        lat = np.array([1.0, 100.0])
        assert gc_overlap_fraction(times, lat, np.zeros((0, 2))) == 0.0


class TestSummary:
    def test_verdict_labels(self):
        verdicts = qualitative_summary(
            dacapo={
                "ParallelOldGC": {"exec_time": 100.0, "max_pause": 0.8},
                "G1GC": {"exec_time": 135.0, "max_pause": 3.0},
            },
            cassandra={
                "ParallelOldGC": {"exec_time": 7200.0, "max_pause": 240.0},
                "G1GC": {"exec_time": 7500.0, "max_pause": 3.5},
            },
        )
        by_key = {(v.gc, v.experiment): v for v in verdicts}
        assert by_key[("ParallelOldGC", "DaCapo")].throughput == "good"
        assert by_key[("ParallelOldGC", "DaCapo")].pause_time == "short"
        assert by_key[("G1GC", "DaCapo")].throughput == "bad"
        assert by_key[("ParallelOldGC", "Cassandra")].pause_time == "unacceptable"
        assert by_key[("G1GC", "Cassandra")].pause_time == "significant"

    def test_bad_input_rejected(self):
        with pytest.raises(ConfigError):
            qualitative_summary({"A": {"exec_time": 0.0, "max_pause": 1.0}}, {})


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_width_mismatch(self):
        with pytest.raises(ConfigError):
            render_table(["a"], [[1, 2]])

    def test_render_series_subsamples(self):
        xs = np.arange(1000.0)
        out = render_series(xs, xs * 2, label="pauses", max_points=10)
        assert out.startswith("pauses:")
        assert out.count("(") == 10

    def test_render_series_empty(self):
        assert "empty" in render_series(np.array([]), np.array([]), label="x")

    def test_render_series_mismatch(self):
        with pytest.raises(ConfigError):
            render_series(np.array([1.0]), np.array([]))


class TestOccupancyAndIntervals:
    def _log(self):
        log = GCLog()
        log.record(PauseRecord(1.0, 0.5, "young", "Allocation Failure", "X",
                               heap_used_before=800.0, heap_used_after=200.0))
        log.record(PauseRecord(5.0, 1.0, "full", "System.gc()", "X",
                               heap_used_before=900.0, heap_used_after=150.0))
        return log

    def test_occupancy_sawtooth(self):
        from repro.analysis.pauses import heap_occupancy_series

        ts, used = heap_occupancy_series(self._log())
        np.testing.assert_allclose(ts, [1.0, 1.5, 5.0, 6.0])
        np.testing.assert_allclose(used, [800.0, 200.0, 900.0, 150.0])

    def test_occupancy_empty_log(self):
        from repro.analysis.pauses import heap_occupancy_series

        ts, used = heap_occupancy_series(GCLog())
        assert ts.size == 0 and used.size == 0

    def test_inter_pause_intervals(self):
        from repro.analysis.pauses import inter_pause_intervals

        gaps = inter_pause_intervals(self._log())
        np.testing.assert_allclose(gaps, [3.5])  # 5.0 - (1.0 + 0.5)

    def test_inter_pause_single_pause(self):
        from repro.analysis.pauses import inter_pause_intervals

        log = GCLog()
        log.record(PauseRecord(1.0, 0.5, "young", "Allocation Failure", "X"))
        assert inter_pause_intervals(log).size == 0


class TestPausePercentiles:
    def test_percentiles_of_known_log(self):
        from repro.analysis.pauses import pause_percentiles

        log = GCLog()
        for i, d in enumerate([0.1, 0.2, 0.3, 0.4]):
            log.record(PauseRecord(float(i), d, "young", "x", "X"))
        p = pause_percentiles(log)
        # Percentiles are rank-based through the shared LogHistogram
        # (p50 of 4 samples is the 2nd-ranked value's bucket, not an
        # interpolated midpoint); the max is exact.
        assert p["p100"] == pytest.approx(0.4)
        assert p["p50"] == pytest.approx(0.2, rel=log.pause_hist.relative_error)

    def test_empty_log_zeroes(self):
        from repro.analysis.pauses import pause_percentiles

        p = pause_percentiles(GCLog())
        assert p == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p100": 0.0}

    def test_custom_quantiles(self):
        from repro.analysis.pauses import pause_percentiles

        log = GCLog()
        log.record(PauseRecord(0.0, 1.0, "young", "x", "X"))
        assert set(pause_percentiles(log, qs=(25, 75))) == {"p25", "p75"}
