"""Tests for the simlint static-analysis pass (rules, suppressions,
baseline, CLI) against the committed fixture files."""

import pathlib

import pytest

from repro.lint import (
    DEFAULT_BASELINE,
    FileContext,
    RULES_BY_ID,
    SuppressionTable,
    default_rules,
    finding_key,
    lint_file,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.cli import main as lint_main

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def lint_fixture(name, rule_ids=None):
    """Lint one fixture file; returns (reportable, suppressed) findings."""
    rules = default_rules()
    if rule_ids:
        rules = [r for r in rules if r.rule_id in rule_ids]
    return lint_file(FIXTURES / name, rules)


class TestRuleDetection:
    def test_sl001_flags_every_wallclock_read(self):
        findings, _ = lint_fixture("sl001_wallclock.py", {"SL001"})
        assert len(findings) == 6
        assert {f.rule_id for f in findings} == {"SL001"}
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "time.perf_counter" in messages       # resolved through alias
        assert "datetime.datetime.now" in messages
        assert "os.urandom" in messages
        assert "uuid.uuid4" in messages
        assert "random.random" in messages

    def test_sl002_flags_literal_and_missing_seeds(self):
        findings, _ = lint_fixture("sl002_rng.py", {"SL002"})
        assert len(findings) == 3
        # Derived (non-literal) seed on the last call is allowed.
        sources = [f.source_line for f in findings]
        assert not any("hash(" in s for s in sources)

    def test_sl002_exempts_repro_seeding_itself(self):
        rules = [RULES_BY_ID["SL002"]()]
        findings, _ = lint_file(
            REPO_ROOT / "src" / "repro" / "seeding.py", rules
        )
        assert findings == []

    def test_sl003_flags_unordered_iteration_under_sim(self):
        findings, _ = lint_fixture("sim/sl003_iteration.py", {"SL003"})
        assert len(findings) == 4
        descs = " ".join(f.message for f in findings)
        assert "set comprehension" in descs
        assert "set() result" in descs
        assert ".keys() result" in descs
        assert "set literal" in descs

    def test_sl003_scoped_to_core_dirs(self):
        # The same code outside sim/gc/jvm is not the rule's business.
        rule = RULES_BY_ID["SL003"]()
        src = "for x in set(items):\n    pass\n"
        assert not rule.applies(FileContext("tests/helpers/loop.py", src))
        assert rule.applies(FileContext("src/repro/gc/base.py", src))

    def test_sl004_flags_time_equality(self):
        findings, _ = lint_fixture("sl004_float_eq.py", {"SL004"})
        assert len(findings) == 3

    def test_sl005_flags_bad_flag_literal(self):
        findings, _ = lint_fixture("sl005_flags.py", {"SL005"})
        assert len(findings) == 1
        assert "ThisFlagDoesNotExist" in findings[0].message

    def test_sl006_flags_dropped_pauses_only(self):
        findings, _ = lint_fixture("sl006_collector.py", {"SL006"})
        assert len(findings) == 2
        labels = {f.message.split("`")[1] for f in findings}
        assert labels == {
            "DroppedPauseGC.allocation_failure",
            "SilentFullGC.explicit_gc",
        }

    def test_clean_fixture_has_zero_findings(self):
        findings, suppressed = lint_fixture("clean.py")
        assert findings == []
        assert suppressed == []

    def test_findings_format_as_path_line_rule(self):
        findings, _ = lint_fixture("sl005_flags.py", {"SL005"})
        line = findings[0].format()
        assert line.startswith(f"{findings[0].path}:{findings[0].line} SL005 ")

    def test_syntax_error_becomes_sl000_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings, _ = lint_file(bad, default_rules())
        assert len(findings) == 1
        assert findings[0].rule_id == "SL000"


class TestSuppressions:
    def test_fixture_violations_are_all_suppressed(self):
        findings, suppressed = lint_fixture("suppressed.py")
        assert findings == []
        assert {f.rule_id for f in suppressed} == {"SL001", "SL002"}

    def test_line_directive_parsing(self):
        table = SuppressionTable.from_source(
            "x = 1  # simlint: disable=SL001,SL004 -- calibration\n"
        )
        assert table.is_suppressed("SL001", 1)
        assert table.is_suppressed("SL004", 1)
        assert not table.is_suppressed("SL002", 1)
        assert not table.is_suppressed("SL001", 2)
        assert table.directives[0].reason == "calibration"
        assert table.directives[0].rules == ("SL001", "SL004")

    def test_file_directive_applies_everywhere(self):
        table = SuppressionTable.from_source("# simlint: disable-file=SL003\n")
        assert table.is_suppressed("SL003", 999)

    def test_disable_all(self):
        table = SuppressionTable.from_source("y = 2  # simlint: disable=all\n")
        assert table.is_suppressed("SL001", 1)
        assert table.is_suppressed("SL006", 1)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings, _ = lint_fixture("sl001_wallclock.py", {"SL001"})
        path = tmp_path / ".simlint-baseline"
        keys = write_baseline(path, findings)
        assert load_baseline(path) == set(keys)
        # With the baseline loaded, the same findings stop failing the run.
        result = run_lint(
            [str(FIXTURES / "sl001_wallclock.py")],
            [RULES_BY_ID["SL001"]()],
            baseline=load_baseline(path),
        )
        assert result.ok
        assert len(result.baselined) == len(findings)

    def test_key_survives_line_renumbering(self):
        findings, _ = lint_fixture("sl001_wallclock.py", {"SL001"})
        f = findings[0]
        moved = type(f)(f.path, f.line + 40, f.rule_id, f.message, f.source_line)
        assert finding_key(moved) == finding_key(f)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope") == set()


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        rc = lint_main(["--no-baseline", str(FIXTURES / "sl002_rng.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SL002" in out

    def test_exit_zero_on_clean(self, capsys):
        rc = lint_main(["--no-baseline", str(FIXTURES / "clean.py")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_two_without_files(self, tmp_path):
        assert lint_main([str(tmp_path)]) == 2

    def test_select_subset(self, capsys):
        rc = lint_main([
            "--no-baseline", "--select", "SL004",
            str(FIXTURES / "sl001_wallclock.py"),
        ])
        assert rc == 0  # SL001 violations invisible to an SL004-only run

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006"):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        base = tmp_path / "base"
        target = str(FIXTURES / "sl001_wallclock.py")
        assert lint_main(["--baseline", str(base), "--write-baseline", target]) == 0
        assert lint_main(["--baseline", str(base), target]) == 0

    def test_default_baseline_name(self):
        assert DEFAULT_BASELINE == ".simlint-baseline"


class TestRepoIsClean:
    """Meta-test: the shipped tree passes its own lint (whole-program
    pass included), with no unjustified baseline debt and no suppression
    comments."""

    PATHS = [str(REPO_ROOT / d) for d in ("src", "benchmarks", "examples")]

    def test_repo_lints_clean_without_baseline(self):
        result = run_lint(self.PATHS)
        assert result.files_checked > 50
        assert result.ok, "\n" + "\n".join(f.format() for f in result.findings)

    def test_repo_has_no_suppressions(self):
        result = run_lint(self.PATHS)
        assert result.suppressed == []

    def test_src_passes_whole_program_rules(self):
        result = run_lint([str(REPO_ROOT / "src")], wp=True)
        assert result.wp_files > 50
        assert result.ok, "\n" + "\n".join(f.format() for f in result.findings)

    def test_every_baseline_entry_is_justified(self):
        from repro.lint import load_justifications
        entries = load_justifications(REPO_ROOT / DEFAULT_BASELINE)
        assert entries, "committed baseline unexpectedly empty"
        for key, note in entries.items():
            assert note and "justify:" not in note, (
                f"baseline entry {key} lacks a justification")

    def test_baseline_covers_only_tests(self):
        # Production code carries zero accepted debt; the baseline exists
        # for the relaxed tests/ profile only.
        for key in load_baseline(REPO_ROOT / DEFAULT_BASELINE):
            assert key.split(":")[1].startswith("tests/"), key
