"""Tests for mutator threads, safepoints and the stop-the-world protocol."""

import pytest

from repro.errors import OutOfMemoryError
from repro.heap.lifetime import Exponential
from repro.jvm import JVM
from repro.units import MB
from repro.workloads.base import Workload


class ScriptedWorkload(Workload):
    """Runs a user-supplied driver function (testing harness)."""

    name = "scripted"

    def __init__(self, fn):
        self.fn = fn

    def drive(self, jvm, result, **kwargs):
        yield from self.fn(jvm, result)


def run_script(cfg, fn):
    jvm = JVM(cfg)
    result = jvm.run(ScriptedWorkload(fn))
    return jvm, result


class TestWork:
    def test_work_advances_time(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.work(2.0)
                result.extras["t"] = jvm.now

            yield from jvm.join([jvm.spawn_mutator(body)])

        _jvm, result = run_script(small_jvm_config(), script)
        assert result.extras["t"] == pytest.approx(2.0)
        assert not result.crashed

    def test_parallel_mutators_share_time(self, small_jvm_config):
        # 16 threads on an 8-core machine run at half speed.
        def script(jvm, result):
            procs = []
            for i in range(16):
                def body(ctx):
                    yield from ctx.work(1.0)

                procs.append(jvm.spawn_mutator(body))
            yield from jvm.join(procs)
            result.extras["t"] = jvm.now

        _jvm, result = run_script(small_jvm_config(), script)
        assert result.extras["t"] == pytest.approx(2.0, rel=0.01)

    def test_idle_not_scaled_by_load(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.idle(3.0)

            yield from jvm.join([jvm.spawn_mutator(body)])
            result.extras["t"] = jvm.now

        _jvm, result = run_script(small_jvm_config(), script)
        assert result.extras["t"] == pytest.approx(3.0)


class TestStopTheWorld:
    def test_gc_pauses_other_mutators(self, small_jvm_config):
        """A worker's 1 s of CPU work takes 1 s + the GC pauses that
        interrupt it."""
        def script(jvm, result):
            def allocator(ctx):
                # Allocate enough to force at least one young GC.
                for i in range(6):
                    yield from ctx.allocate(30 * MB, Exponential(0.01))

            def worker(ctx):
                yield from ctx.work(1.0)
                result.extras["worker_done"] = jvm.now

            procs = [jvm.spawn_mutator(allocator), jvm.spawn_mutator(worker)]
            yield from jvm.join(procs)

        jvm, result = run_script(small_jvm_config(), script)
        assert jvm.gc_log.count >= 1
        # Worker finished late by at least the pauses that preceded it.
        stalls = sum(p.duration for p in jvm.gc_log.pauses
                     if p.end <= result.extras["worker_done"])
        assert result.extras["worker_done"] >= 1.0 + 0.9 * stalls

    def test_explicit_system_gc_recorded(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.allocate(10 * MB, None, pinned=True)

            yield from jvm.join([jvm.spawn_mutator(body)])
            yield from jvm.system_gc()

        jvm, _result = run_script(small_jvm_config(), script)
        assert jvm.gc_log.full_count == 1
        assert jvm.gc_log.pauses[-1].cause == "System.gc()"

    def test_total_stw_time_accumulates(self, small_jvm_config):
        def script(jvm, result):
            yield from jvm.system_gc()
            yield from jvm.system_gc()

        jvm, _result = run_script(small_jvm_config(), script)
        assert jvm.world.total_stw_time == pytest.approx(jvm.gc_log.total_pause)

    def test_time_to_safepoint_precedes_pause(self, small_jvm_config):
        def script(jvm, result):
            result.extras["before"] = jvm.now
            yield from jvm.system_gc()
            result.extras["after"] = jvm.now

        jvm, result = run_script(small_jvm_config(), script)
        elapsed = result.extras["after"] - result.extras["before"]
        assert elapsed > jvm.gc_log.total_pause  # includes time-to-safepoint


class TestAllocation:
    def test_allocation_failure_triggers_gc_and_retries(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                # 6 x 40 MB through a ~102 MB eden: requires several GCs.
                for _ in range(6):
                    yield from ctx.allocate(40 * MB, Exponential(0.001))

            yield from jvm.join([jvm.spawn_mutator(body)])

        jvm, result = run_script(small_jvm_config(), script)
        assert not result.crashed
        assert jvm.gc_log.count >= 1
        assert jvm.gc_log.pauses[0].cause == "Allocation Failure"

    def test_oversized_allocation_goes_to_old(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.allocate(110 * MB, None, pinned=True)

            yield from jvm.join([jvm.spawn_mutator(body)])

        jvm, result = run_script(small_jvm_config(), script)
        assert not result.crashed
        assert jvm.heap.old.used == pytest.approx(110 * MB)

    def test_allocate_old_helper(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.allocate_old(50 * MB, None, pinned=True)

            yield from jvm.join([jvm.spawn_mutator(body)])

        jvm, result = run_script(small_jvm_config(), script)
        assert jvm.heap.old.used == pytest.approx(50 * MB)

    def test_out_of_memory_crashes_run(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                for _ in range(20):
                    yield from ctx.allocate(60 * MB, None, pinned=True)

            yield from jvm.join([jvm.spawn_mutator(body)])

        _jvm, result = run_script(small_jvm_config(), script)
        assert result.crashed
        assert "OutOfMemoryError" in result.crash_reason

    def test_allocation_overhead_recorded(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.allocate(20 * MB, Exponential(1.0), n_objects=5000)

            yield from jvm.join([jvm.spawn_mutator(body)])

        _jvm, result = run_script(small_jvm_config(), script)
        assert result.alloc_overhead_time > 0
        assert result.allocated_bytes == pytest.approx(20 * MB)


class TestJVMLifecycle:
    def test_jvm_single_use(self, small_jvm_config):
        jvm = JVM(small_jvm_config())

        def fn(j, r):
            yield j.engine.timeout(0.1)

        jvm.run(ScriptedWorkload(fn))
        with pytest.raises(Exception):
            jvm.run(ScriptedWorkload(fn))

    def test_deterministic_runs(self, small_jvm_config):
        def fn(jvm, result):
            def body(ctx):
                for _ in range(4):
                    yield from ctx.allocate(30 * MB, Exponential(0.05))
                    yield from ctx.work(0.2)

            yield from jvm.join([jvm.spawn_mutator(body)])

        times = []
        for _ in range(2):
            jvm = JVM(small_jvm_config(seed=11))
            result = jvm.run(ScriptedWorkload(fn))
            times.append((result.execution_time, result.gc_log.total_pause))
        assert times[0] == times[1]

    def test_run_result_summary_contains_gc(self, small_jvm_config):
        jvm = JVM(small_jvm_config(gc="G1"))

        def fn(j, r):
            yield j.engine.timeout(0.1)

        result = jvm.run(ScriptedWorkload(fn))
        assert "G1GC" in result.summary()
