"""End-to-end tests of concurrent GC machinery inside real runs.

The collector unit tests exercise cycle state machines by calling
continuations directly; these tests verify the full pipeline — scheduled
continuations flowing through the DES engine, safepoints interleaving
with mutators — inside complete JVM runs.
"""

import pytest

from repro import JVM, JVMConfig
from repro.gc.base import Outcome
from repro.sim import Engine
from repro.errors import SimulationError
from repro.units import GB, MB
from repro.workloads.dacapo import get_benchmark
from repro.workloads.synthetic import AllocationPhase, SyntheticWorkload
from repro.heap.lifetime import Immortal


class TestCMSEndToEnd:
    @pytest.fixture(scope="class")
    def cms_run(self, ):
        # Old gen fills past the initiating occupancy -> cycles run.
        jvm = JVM(JVMConfig(gc="CMS", heap=1 * GB, young=200 * MB, seed=2))
        result = jvm.run(get_benchmark("h2"), iterations=10, system_gc=False)
        return jvm, result

    def test_remark_pauses_logged(self, cms_run):
        jvm, result = cms_run
        kinds = {p.kind for p in jvm.gc_log.pauses}
        assert "initial-mark" in kinds
        assert "remark" in kinds

    def test_concurrent_phases_logged(self, cms_run):
        jvm, _result = cms_run
        phases = {c.phase for c in jvm.gc_log.concurrent}
        assert "concurrent-mark" in phases
        assert "concurrent-sweep" in phases

    def test_remark_follows_its_initial_mark(self, cms_run):
        jvm, _result = cms_run
        initial_marks = [p.start for p in jvm.gc_log.pauses
                         if p.kind == "initial-mark"]
        remarks = [p.start for p in jvm.gc_log.pauses if p.kind == "remark"]
        assert remarks, "no remark executed"
        assert min(remarks) > min(initial_marks)

    def test_concurrent_mark_duration_respected(self, cms_run):
        """The remark pause lands after its concurrent mark completes."""
        jvm, _result = cms_run
        marks = [c for c in jvm.gc_log.concurrent if c.phase == "concurrent-mark"]
        remarks = [p for p in jvm.gc_log.pauses if p.kind == "remark"]
        for mark, remark in zip(marks, remarks):
            assert remark.start >= mark.start + mark.duration - 1e-6


class TestG1EndToEnd:
    def test_marking_then_mixed_collections(self):
        jvm = JVM(JVMConfig(gc="G1", heap=1 * GB, young=200 * MB, seed=2))
        jvm.run(get_benchmark("h2"), iterations=10, system_gc=False)
        kinds = [p.kind for p in jvm.gc_log.pauses]
        assert "remark" in kinds and "cleanup" in kinds
        assert "mixed" in kinds  # post-marking mixed evacuations happened

    def test_young_resizes_during_run(self):
        jvm = JVM(JVMConfig(gc="G1", heap=2 * GB, young=1 * GB, seed=2))
        initial_eden = jvm.heap.eden.capacity
        jvm.run(get_benchmark("lusearch"), iterations=5, system_gc=False)
        assert jvm.heap.eden.capacity != initial_eden


class TestHTMEndToEnd:
    def test_concurrent_evacuations_complete(self):
        jvm = JVM(JVMConfig(gc="HTM", heap=1 * GB, young=200 * MB, seed=2))
        result = jvm.run(get_benchmark("lusearch"), iterations=5, system_gc=False)
        assert not result.crashed
        evacs = [c for c in jvm.gc_log.concurrent if c.phase == "htm-evacuation"]
        assert evacs
        # At run end no evacuation is still in flight.
        assert jvm.collector.concurrent_threads_active == 0


class TestWorldMisc:
    def test_outcome_merge(self):
        from repro.gc.base import STWPause

        a = Outcome(pauses=[STWPause("young", "x", 0.1)])
        b = Outcome(pauses=[STWPause("full", "y", 0.2)], schedule=[(1.0, None)])
        a.merge(b)
        assert len(a.pauses) == 2 and len(a.schedule) == 1

    def test_engine_reentrant_run_rejected(self):
        eng = Engine()

        def proc():
            with pytest.raises(SimulationError):
                eng.run()
            yield eng.timeout(0.1)

        eng.process(proc())
        eng.run()

    def test_jvm_sleep(self, small_jvm_config):
        from tests.test_jvm_threads import ScriptedWorkload

        jvm = JVM(small_jvm_config())

        def script(j, result):
            yield from j.sleep(5.0)
            result.extras["t"] = j.now

        result = jvm.run(ScriptedWorkload(script))
        assert result.extras["t"] == pytest.approx(5.0)

    def test_running_mutators_counts_unparked(self, small_jvm_config):
        from tests.test_jvm_threads import ScriptedWorkload

        jvm = JVM(small_jvm_config())

        def script(j, result):
            def body(ctx):
                yield from ctx.work(1.0)

            procs = [j.spawn_mutator(body) for _ in range(3)]
            yield j.engine.timeout(0.5)
            result.extras["running"] = j.world.running_mutators()
            yield from j.join(procs)

        result = jvm.run(ScriptedWorkload(script))
        assert result.extras["running"] == 3

    def test_synthetic_workload_with_misc_safepoints(self, small_jvm_config):
        jvm = JVM(small_jvm_config(misc_safepoints=True,
                                   misc_safepoint_interval=0.3))
        phases = [AllocationPhase("serve", duration=2.0, alloc_rate=20 * MB)]
        result = jvm.run(SyntheticWorkload(phases, threads=2))
        assert not result.crashed
        assert any(p.kind == "vm-op" for p in jvm.gc_log.pauses)
