"""Tests for the generational heap: allocation + collection mechanics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    AllocationFailure,
    ConfigError,
    HeapError,
    PromotionFailure,
)
from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.heap.lifetime import Exponential, Immortal
from repro.heap.tlab import TLABConfig
from repro.units import GB, MB


def make_heap(heap=256 * MB, young=64 * MB, threads=4, tlab=None):
    cfg = HeapConfig(
        heap_bytes=heap, young_bytes=young,
        tlab=tlab if tlab is not None else TLABConfig(),
    )
    return GenerationalHeap(cfg, n_mutator_threads=threads)


class TestGeometry:
    def test_survivor_ratio_8_splits_young(self):
        cfg = HeapConfig(heap_bytes=100 * MB, young_bytes=50 * MB)
        assert cfg.eden_bytes == pytest.approx(40 * MB)
        assert cfg.survivor_bytes == pytest.approx(5 * MB)
        assert cfg.old_bytes == pytest.approx(50 * MB)

    def test_young_larger_than_heap_rejected(self):
        with pytest.raises(ConfigError):
            HeapConfig(heap_bytes=10 * MB, young_bytes=20 * MB)

    def test_zero_heap_rejected(self):
        with pytest.raises(ConfigError):
            HeapConfig(heap_bytes=0, young_bytes=0)


class TestAllocation:
    def test_allocate_fills_eden(self):
        h = make_heap()
        h.allocate(0.0, 10 * MB, Exponential(1.0))
        assert h.eden.used == 10 * MB

    def test_eden_free_reserves_tlab_waste(self):
        h = make_heap()
        assert h.eden_free < h.eden.capacity
        assert h.eden_free == pytest.approx(
            h.eden.capacity - h.tlabs.expected_waste
        )

    def test_allocation_failure_when_full(self):
        h = make_heap()
        h.allocate(0.0, h.eden_free, Exponential(1.0))
        with pytest.raises(AllocationFailure):
            h.allocate(0.0, 1 * MB, Exponential(1.0))

    def test_allocate_old_direct(self):
        h = make_heap()
        h.allocate_old(0.0, 20 * MB, pinned=True)
        assert h.old.used == 20 * MB

    def test_allocate_old_overflow_rejected(self):
        h = make_heap()
        with pytest.raises(PromotionFailure):
            h.allocate_old(0.0, 500 * MB, pinned=True)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ConfigError):
            make_heap().allocate(0.0, -1, Exponential(1.0))

    def test_allocate_object_accounts_eden(self):
        h = make_heap()
        h.allocate_object(1 * MB, root=True)
        assert h.eden.used == 1 * MB


class TestMinorCollection:
    def test_eden_empty_after_minor(self):
        h = make_heap()
        h.allocate(0.0, 30 * MB, Exponential(0.001))
        h.minor_collection(10.0, tenuring_threshold=6)
        assert h.eden.used == 0.0
        assert h.eden_cohorts == []

    def test_dead_bytes_freed(self):
        h = make_heap()
        h.allocate(0.0, 30 * MB, Exponential(0.001))  # dies instantly
        vol = h.minor_collection(10.0, tenuring_threshold=6)
        assert vol.eden_freed == pytest.approx(30 * MB)
        assert vol.copied_to_survivor == 0.0

    def test_survivors_move_to_survivor_space(self):
        h = make_heap()
        h.allocate(0.0, 4 * MB, None, pinned=True)
        vol = h.minor_collection(1.0, tenuring_threshold=6)
        assert vol.copied_to_survivor == pytest.approx(4 * MB)
        assert h.survivor.used == pytest.approx(4 * MB)

    def test_tenuring_promotes_after_threshold(self):
        h = make_heap()
        h.allocate(0.0, 4 * MB, None, pinned=True)
        for i in range(4):
            h.minor_collection(float(i + 1), tenuring_threshold=2)
        assert h.old.used == pytest.approx(4 * MB)
        assert h.survivor.used == 0.0

    def test_survivor_overflow_promotes_oldest_first(self):
        h = make_heap()  # survivor capacity 6.4 MB
        old_cohort = h.allocate(0.0, 4 * MB, None, pinned=True, label="old")
        h.minor_collection(1.0, tenuring_threshold=10)
        young_cohort = h.allocate(1.0, 5 * MB, None, pinned=True, label="young")
        h.minor_collection(2.0, tenuring_threshold=10)
        # 9 MB of survivors > 6.4 MB capacity: the older cohort promotes.
        assert old_cohort in h.old_cohorts
        assert young_cohort in h.survivor_cohorts

    def test_promotion_failure_flagged(self):
        h = make_heap(heap=100 * MB, young=80 * MB)
        h.allocate_old(0.0, 18 * MB, pinned=True)
        h.allocate(0.0, 30 * MB, None, pinned=True)
        vol = h.minor_collection(1.0, tenuring_threshold=0)
        assert vol.promotion_failed

    def test_cards_reset_after_minor(self):
        h = make_heap()
        h.allocate_old(0.0, 30 * MB, pinned=True)
        h.dirty_cards(10 * MB)
        vol = h.minor_collection(1.0, tenuring_threshold=6)
        assert vol.cards_scanned >= 10 * MB
        assert h.dirty_card_bytes <= 0.15 * max(vol.promoted, 1)

    def test_dirty_cards_capped_by_old_used(self):
        h = make_heap()
        h.allocate_old(0.0, 5 * MB, pinned=True)
        h.dirty_cards(50 * MB)
        assert h.dirty_card_bytes == pytest.approx(5 * MB)


class TestSurvivorOverflowBorrowsEden:
    def test_overflow_extends_survivor_and_shrinks_eden(self):
        h = make_heap()
        nominal_eden = h.eden.capacity
        h.allocate(0.0, 20 * MB, None, pinned=True)
        h.minor_collection(1.0, tenuring_threshold=10)
        # 20 MB survivors > 6.4 MB survivor space; old gen has room, so
        # they promote instead — no borrowing needed.
        assert h.eden.capacity == nominal_eden

    def test_stranded_survivors_borrow_eden(self):
        h = make_heap(heap=100 * MB, young=80 * MB)  # old = 20 MB
        h.allocate_old(0.0, 15 * MB, pinned=True)
        h.allocate(0.0, 30 * MB, None, pinned=True)
        h.minor_collection(1.0, tenuring_threshold=0)
        # Most survivors cannot promote (old nearly full): they stay in the
        # survivor space, which borrows eden capacity.
        assert h.survivor.capacity > h.config.survivor_bytes
        assert h.eden.capacity < h.config.eden_bytes
        total_young = h.eden.capacity + h.survivor.capacity
        assert total_young <= h.config.eden_bytes + h.config.survivor_bytes + 1e-6


class TestFullCollection:
    def test_full_empties_young(self):
        h = make_heap()
        h.allocate(0.0, 20 * MB, None, pinned=True)
        h.full_collection(1.0)
        assert h.eden.used == 0.0
        assert h.old.used == pytest.approx(20 * MB)

    def test_full_reclaims_old_garbage(self):
        h = make_heap()
        c = h.allocate_old(0.0, 30 * MB, pinned=True)
        c.release()
        vol = h.full_collection(1.0)
        assert vol.old_freed == pytest.approx(30 * MB)
        assert h.old.used == 0.0

    def test_compacting_resets_fragmentation(self):
        h = make_heap()
        h.fragmentation = 0.2
        h.full_collection(1.0, compacting=True)
        assert h.fragmentation == 0.0

    def test_non_compacting_keeps_fragmentation(self):
        h = make_heap()
        h.fragmentation = 0.2
        h.full_collection(1.0, compacting=False)
        assert h.fragmentation == 0.2

    def test_overcommit_unreachable_through_api(self):
        """Eden borrowing means live data can never exceed the heap via the
        allocation API: the allocation fails first (a JVM would OOM)."""
        h = make_heap(heap=100 * MB, young=80 * MB)
        h.allocate_old(0.0, 19 * MB, pinned=True)    # old nearly full
        h.allocate(0.0, 60 * MB, None, pinned=True)  # eden full of live data
        h.minor_collection(0.5, tenuring_threshold=0)  # strands survivors
        assert h.eden.capacity < h.config.eden_bytes  # eden was borrowed
        with pytest.raises(AllocationFailure):
            h.allocate(1.0, 25 * MB, None, pinned=True)

    def test_live_exceeding_heap_raises(self):
        """White-box: injected live data beyond the heap is a hard error."""
        from repro.heap.cohort import Cohort

        h = make_heap(heap=100 * MB, young=80 * MB)
        h.old_cohorts.append(Cohort(0.0, 0.0, 120 * MB, pinned=True))
        with pytest.raises(HeapError):
            h.full_collection(1.0)

    def test_marked_equals_live(self):
        h = make_heap()
        h.allocate(0.0, 10 * MB, None, pinned=True)
        h.allocate_old(0.0, 5 * MB, pinned=True)
        vol = h.full_collection(1.0)
        assert vol.marked == pytest.approx(15 * MB)


class TestSweep:
    def test_sweep_frees_dead_old(self):
        h = make_heap()
        c = h.allocate_old(0.0, 30 * MB, pinned=True)
        c.release()
        vol = h.sweep_old(1.0)
        assert vol.old_freed == pytest.approx(30 * MB)
        assert h.old.used == 0.0

    def test_sweep_increases_fragmentation(self):
        h = make_heap()
        c = h.allocate_old(0.0, 10 * MB, pinned=True)
        c.release()
        h.sweep_old(1.0, fragmentation_increment=0.05)
        assert h.fragmentation == pytest.approx(0.05)

    def test_sweep_without_garbage_no_fragmentation(self):
        h = make_heap()
        h.allocate_old(0.0, 10 * MB, pinned=True)
        h.sweep_old(1.0)
        assert h.fragmentation == 0.0

    def test_fragmentation_reduces_effective_capacity(self):
        h = make_heap()
        h.fragmentation = 0.1
        assert h.old_effective_capacity == pytest.approx(0.9 * h.old.capacity)


class TestResizeYoung:
    def test_resize_young_moves_capacity(self):
        h = make_heap(heap=1 * GB, young=256 * MB)
        h.resize_young(128 * MB)
        assert h.eden.capacity + 2 * h.survivor.capacity == pytest.approx(128 * MB)
        assert h.old.capacity == pytest.approx(1 * GB - 128 * MB)

    def test_resize_young_requires_empty_eden(self):
        h = make_heap()
        h.allocate(0.0, 1 * MB, Exponential(1.0))
        with pytest.raises(HeapError):
            h.resize_young(32 * MB)

    def test_resize_refused_when_old_too_full(self):
        h = make_heap(heap=100 * MB, young=20 * MB)
        h.allocate_old(0.0, 79 * MB, pinned=True)
        before = h.eden.capacity
        h.resize_young(90 * MB)  # would shrink old below its usage
        assert h.eden.capacity == before


class TestConservation:
    @given(
        # total stays under eden capacity (51.2 MB) minus TLAB waste
        batches=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=8),
        tau=st.floats(0.01, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_minor_collection_conserves_bytes(self, batches, tau):
        """allocated == freed + survivor + promoted after one minor GC."""
        h = make_heap()
        total = 0.0
        t = 0.0
        for mb in batches:
            n = mb * MB
            h.allocate(t, n, Exponential(tau))
            total += n
            t += 0.25
        vol = h.minor_collection(t + 1.0, tenuring_threshold=6)
        retained = h.survivor.used + vol.promoted
        assert vol.eden_freed + retained == pytest.approx(total, rel=1e-9)

    @given(pinned_mb=st.floats(0.5, 20.0), garbage_mb=st.floats(0.5, 20.0))
    @settings(max_examples=40, deadline=None)
    def test_full_collection_conserves_bytes(self, pinned_mb, garbage_mb):
        h = make_heap()
        h.allocate(0.0, pinned_mb * MB, None, pinned=True)
        h.allocate(0.0, garbage_mb * MB, Exponential(1e-6))
        vol = h.full_collection(10.0)
        assert vol.total_freed == pytest.approx(garbage_mb * MB, rel=1e-6)
        assert h.old.used == pytest.approx(pinned_mb * MB, rel=1e-6)
