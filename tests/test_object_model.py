"""Tests for the explicit object graph: tracing, barrier, collections."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, HeapError
from repro.heap.object_model import GraphCollectResult, ObjectGraph, OLD, YOUNG


def build_chain(graph, n, root=True):
    """Allocate a chain o1 -> o2 -> ... -> oN; returns the objects."""
    objs = [graph.allocate(100.0) for _ in range(n)]
    for a, b in zip(objs, objs[1:]):
        graph.add_ref(a.oid, b.oid)
    if root:
        graph.add_root(objs[0].oid)
    return objs


class TestAllocationAndRoots:
    def test_allocate_young(self):
        g = ObjectGraph()
        o = g.allocate(64.0)
        assert o.gen == YOUNG
        assert g.young_bytes == 64.0

    def test_allocate_with_root(self):
        g = ObjectGraph()
        o = g.allocate(1.0, root=True)
        assert o.oid in g.roots

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            ObjectGraph().allocate(-1.0)

    def test_add_root_unknown_object(self):
        with pytest.raises(HeapError):
            ObjectGraph().add_root(999)

    def test_remove_root(self):
        g = ObjectGraph()
        o = g.allocate(1.0, root=True)
        g.remove_root(o.oid)
        assert o.oid not in g.roots


class TestTracing:
    def test_chain_fully_reachable(self):
        g = ObjectGraph()
        objs = build_chain(g, 5)
        assert g.reachable_all() == {o.oid for o in objs}

    def test_unrooted_chain_unreachable(self):
        g = ObjectGraph()
        build_chain(g, 3, root=False)
        assert g.reachable_all() == set()

    def test_cycle_does_not_hang(self):
        g = ObjectGraph()
        a, b = g.allocate(1.0), g.allocate(1.0)
        g.add_ref(a.oid, b.oid)
        g.add_ref(b.oid, a.oid)
        g.add_root(a.oid)
        assert g.reachable_all() == {a.oid, b.oid}

    def test_deep_chain_iterative(self):
        g = ObjectGraph()
        build_chain(g, 5000)  # would overflow a recursive tracer
        assert len(g.reachable_all()) == 5000


class TestWriteBarrier:
    def test_old_to_young_enters_remset(self):
        g = ObjectGraph()
        old = g.allocate(1.0, root=True)
        old.gen = OLD
        g.young_bytes -= old.size
        g.old_bytes += old.size
        young = g.allocate(1.0)
        g.add_ref(old.oid, young.oid)
        assert old.oid in g.remset

    def test_young_to_young_not_in_remset(self):
        g = ObjectGraph()
        a, b = g.allocate(1.0), g.allocate(1.0)
        g.add_ref(a.oid, b.oid)
        assert not g.remset

    def test_set_ref_overwrites_with_barrier(self):
        g = ObjectGraph()
        src = g.allocate(1.0, root=True)
        a, b = g.allocate(1.0), g.allocate(1.0)
        g.add_ref(src.oid, a.oid)
        g.set_ref(src.oid, 0, b.oid)
        assert src.refs == [b.oid]

    def test_set_ref_none_deletes_slot(self):
        g = ObjectGraph()
        src = g.allocate(1.0, root=True)
        a = g.allocate(1.0)
        g.add_ref(src.oid, a.oid)
        g.set_ref(src.oid, 0, None)
        assert src.refs == []

    def test_set_ref_bad_index(self):
        g = ObjectGraph()
        src = g.allocate(1.0)
        with pytest.raises(ConfigError):
            g.set_ref(src.oid, 3, src.oid)

    def test_dangling_ref_rejected(self):
        g = ObjectGraph()
        src = g.allocate(1.0)
        with pytest.raises(HeapError):
            g.add_ref(src.oid, 424242)


class TestMinorCollection:
    def test_unreachable_young_freed(self):
        g = ObjectGraph()
        build_chain(g, 3, root=False)
        res = g.minor_collect(tenuring_threshold=6)
        assert res.freed_objects == 3
        assert g.young_bytes == 0.0

    def test_reachable_young_survive_and_age(self):
        g = ObjectGraph()
        objs = build_chain(g, 3)
        res = g.minor_collect(tenuring_threshold=6)
        assert res.freed_objects == 0
        assert all(o.age == 1 for o in objs)

    def test_tenuring_promotes_old_enough(self):
        g = ObjectGraph()
        [obj] = build_chain(g, 1)
        for _ in range(3):
            g.minor_collect(tenuring_threshold=2)
        assert obj.gen == OLD
        assert g.old_bytes == obj.size

    def test_promoted_with_young_refs_enters_remset(self):
        g = ObjectGraph()
        parent = g.allocate(1.0, root=True)
        for _ in range(3):
            g.minor_collect(tenuring_threshold=2)
        assert parent.gen == OLD
        child = g.allocate(1.0)
        g.add_ref(parent.oid, child.oid)
        res = g.minor_collect(tenuring_threshold=6)
        # the child is only reachable through the remembered set
        assert res.freed_objects == 0
        assert child.oid in g.objects

    def test_minor_does_not_touch_old_garbage(self):
        g = ObjectGraph()
        o = g.allocate(10.0)  # unrooted
        o.gen = OLD
        g.young_bytes -= o.size
        g.old_bytes += o.size
        res = g.minor_collect(tenuring_threshold=6)
        assert res.freed_objects == 0
        assert o.oid in g.objects

    def test_volumes_accounted(self):
        g = ObjectGraph()
        build_chain(g, 4)
        garbage = [g.allocate(50.0) for _ in range(2)]
        res = g.minor_collect(tenuring_threshold=6)
        assert res.freed_bytes == 100.0
        assert res.copied_bytes == 400.0
        del garbage


class TestFullCollection:
    def test_full_frees_old_garbage(self):
        g = ObjectGraph()
        o = g.allocate(10.0)
        o.gen = OLD
        g.young_bytes -= o.size
        g.old_bytes += o.size
        res = g.full_collect()
        assert res.freed_bytes == 10.0
        assert g.old_bytes == 0.0

    def test_full_promotes_young_survivors(self):
        g = ObjectGraph()
        objs = build_chain(g, 3)
        g.full_collect()
        assert all(o.gen == OLD for o in objs)
        assert g.young_bytes == 0.0

    def test_full_clears_remset(self):
        g = ObjectGraph()
        parent = g.allocate(1.0, root=True)
        for _ in range(3):
            g.minor_collect(tenuring_threshold=2)
        child = g.allocate(1.0)
        g.add_ref(parent.oid, child.oid)
        g.full_collect()
        assert not g.remset  # child was promoted too

    def test_invariants_hold_after_collections(self):
        g = ObjectGraph()
        build_chain(g, 10)
        build_chain(g, 5, root=False)
        g.minor_collect(tenuring_threshold=1)
        g.minor_collect(tenuring_threshold=1)
        g.full_collect()
        g.check_invariants()


class TestHypothesisReachability:
    @given(
        edges=st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40),
        roots=st.sets(st.integers(0, 14), max_size=5),
        threshold=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_collections_preserve_reachability(self, edges, roots, threshold):
        """Whatever the graph shape, live objects are never collected and
        the reachable set is unchanged by minor+full collections."""
        g = ObjectGraph()
        objs = [g.allocate(10.0) for _ in range(15)]
        for a, b in edges:
            g.add_ref(objs[a].oid, objs[b].oid)
        for r in roots:
            g.add_root(objs[r].oid)
        live_before = g.reachable_all()
        g.minor_collect(threshold)
        g.minor_collect(threshold)
        g.full_collect()
        assert g.reachable_all() == live_before
        assert set(g.objects) == live_before
        g.check_invariants()

    @given(
        sizes=st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=20),
        root_mask=st.lists(st.booleans(), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_byte_conservation(self, sizes, root_mask):
        """freed + retained bytes == allocated bytes."""
        g = ObjectGraph()
        allocated = 0.0
        for i, size in enumerate(sizes):
            rooted = root_mask[i % len(root_mask)]
            g.allocate(size, root=rooted)
            allocated += size
        res = g.full_collect()
        assert res.freed_bytes + g.total_bytes == pytest.approx(allocated)
