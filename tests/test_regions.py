"""Tests for G1 region geometry."""

import pytest

from repro.errors import ConfigError
from repro.heap.regions import RegionTable, ergonomic_region_size
from repro.units import GB, MB


class TestErgonomicSize:
    def test_small_heap_min_region(self):
        assert ergonomic_region_size(256 * MB) == 1 * MB

    def test_64g_heap_gets_32mb_regions(self):
        assert ergonomic_region_size(64 * GB) == 32 * MB

    def test_power_of_two(self):
        size = int(ergonomic_region_size(10 * GB))
        assert size & (size - 1) == 0

    def test_targets_2048_regions(self):
        size = ergonomic_region_size(16 * GB)
        assert size == 8 * MB  # 16 GB / 2048

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            ergonomic_region_size(0)


class TestRegionTable:
    def test_for_heap(self):
        t = RegionTable.for_heap(16 * GB)
        assert t.total_regions == 2048

    def test_humongous_threshold_half_region(self):
        t = RegionTable.for_heap(16 * GB)
        assert t.humongous_threshold == 4 * MB

    def test_regions_for_rounds_up(self):
        t = RegionTable(heap_bytes=16 * GB, region_size=8 * MB)
        assert t.regions_for(1) == 1
        assert t.regions_for(8 * MB) == 1
        assert t.regions_for(8 * MB + 1) == 2

    def test_bytes_for(self):
        t = RegionTable(heap_bytes=16 * GB, region_size=8 * MB)
        assert t.bytes_for(3) == 24 * MB

    def test_regions_for_rejects_negative(self):
        t = RegionTable.for_heap(1 * GB)
        with pytest.raises(ConfigError):
            t.regions_for(-1)

    def test_region_bigger_than_heap_rejected(self):
        with pytest.raises(ConfigError):
            RegionTable(heap_bytes=1 * MB, region_size=2 * MB)
