"""Integration tests for the cluster coordinator fabric.

Everything runs in-process: N real ``ExperimentService`` workers on Unix
sockets, one ``ClusterCoordinator`` fronting them, and real
``ServiceClient`` connections — the same moving parts the CI
``cluster-smoke`` job exercises across processes. Injected ``cell_fn``s
count executions per digest (the at-most-once proof) and gate workers
(to force stealing and node death) without faking simulator output.
"""

import asyncio
import contextlib
import json
import threading

from repro.campaign import CellSpec, run_campaign, run_cell
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, merge_stores
from repro.cluster import ClusterConfig, ClusterCoordinator, NodeSpec
from repro.serve import ExperimentService, ServiceConfig, ServiceClient
from repro.serve import protocol
from repro.studies import GridSpec
from repro.telemetry.hist import LogHistogram

JOB = {"benchmark": "lusearch", "gc": "Serial", "heap": "1g",
       "young": "256m", "seed": 0, "iterations": 2}


def canon(d):
    return json.dumps(d, sort_keys=True, separators=(",", ":"))


async def wait_until(cond, timeout=15.0, what="condition"):
    for _ in range(int(timeout / 0.01)):
        if cond():
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class Counted:
    """A cell_fn wrapper counting executions per digest (thread-safe —
    executions happen on worker offload threads)."""

    def __init__(self, inner=run_cell, gate=None):
        self.inner = inner
        self.gate = gate
        self.counts = {}
        self._lock = threading.Lock()

    def __call__(self, cell):
        digest = cell.digest()
        with self._lock:
            self.counts[digest] = self.counts.get(digest, 0) + 1
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0)
        return self.inner(cell)


class Fabric:
    """N in-process workers + one coordinator, torn down in one place."""

    def __init__(self, tmp_path, n_nodes=3, cell_fns=None, **coord_kw):
        self.tmp_path = tmp_path
        self.n_nodes = n_nodes
        self.cell_fns = cell_fns or [run_cell] * n_nodes
        self.coord_kw = coord_kw
        self.services = []
        self.coordinator = None

    async def __aenter__(self):
        addrs = []
        for i in range(self.n_nodes):
            cfg = ServiceConfig(store=str(self.tmp_path / f"shard{i}"),
                                socket_path=str(self.tmp_path / f"w{i}.sock"),
                                workers=1)
            svc = ExperimentService(cfg, cell_fn=self.cell_fns[i])
            await svc.start()
            self.services.append(svc)
            addrs.append(f"unix:{cfg.socket_path}")
        kw = dict(nodes=addrs, socket_path=str(self.tmp_path / "coord.sock"),
                  steal_interval=0.05)
        kw.update(self.coord_kw)
        self.coordinator = ClusterCoordinator(ClusterConfig(**kw))
        await self.coordinator.start()
        return self

    async def __aexit__(self, *exc):
        await self.coordinator.close()
        for svc in self.services:
            with contextlib.suppress(Exception):
                await svc.close()

    def node_id(self, i):
        return f"unix:{self.services[i].config.socket_path}"

    async def client(self):
        return await ServiceClient.connect(self.coordinator.config.socket_path)

    def jobs_for_node(self, i, count, gc="Serial"):
        """Jobs whose digests the ring assigns to worker *i* (placement
        is deterministic, so the seeds are found by scanning)."""
        target = self.node_id(i)
        jobs = []
        for seed in range(1000):
            job = dict(JOB, seed=seed, gc=gc)
            cell = protocol.job_to_cell(job)
            owner = self.coordinator.members.assign(cell.digest())
            if owner is not None and owner.node_id == target:
                jobs.append(job)
                if len(jobs) == count:
                    return jobs
        raise AssertionError(f"could not find {count} jobs for node {i}")


async def raw_op(socket_path, msg):
    """One request/response on a fresh connection (ops the client
    wrapper has no verb for: join/leave)."""
    reader, writer = await asyncio.open_unix_connection(socket_path)
    try:
        writer.write(protocol.encode(msg))
        await writer.drain()
        line = await reader.readuntil(b"\n")
        return protocol.decode(line)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


# ----------------------------------------------------------------------
# Routing, caching, byte identity
# ----------------------------------------------------------------------


class TestShardedExecution:
    def test_cluster_run_merges_byte_identical_to_serial(self, tmp_path):
        grid = GridSpec(benchmarks=["lusearch"],
                        gcs=["Serial", "ParallelOld"], heaps=["1g"],
                        youngs=["256m"], seeds=[0, 1], iterations=2)
        jobs = [
            {"benchmark": b, "gc": gc, "heap": h, "young": y, "seed": s,
             "iterations": 2}
            for b, gc, h, y, s in grid.cells()
        ]

        async def run_fabric():
            async with Fabric(tmp_path) as fab:
                client = await fab.client()
                resps = await asyncio.gather(
                    *(client.submit(j, timeout=60) for j in jobs))
                await client.close()
                return resps

        resps = asyncio.run(run_fabric())
        assert all(r["type"] == "result" for r in resps)
        assert all(r["meta"]["node"].startswith("unix:") for r in resps)

        merged = merge_stores(
            [str(tmp_path / f"shard{i}") for i in range(3)],
            str(tmp_path / "merged"))
        assert merged.records == len(jobs) and merged.failed == 0

        serial = ResultStore(str(tmp_path / "serial"))
        run_campaign(CampaignSpec(name="ref", grids=[grid]), store=serial,
                     executor="serial")
        serial.compact()
        merged_bytes = (tmp_path / "merged" / "records.jsonl").read_bytes()
        serial_bytes = (tmp_path / "serial" / "records.jsonl").read_bytes()
        assert merged_bytes == serial_bytes

    def test_coalesced_submits_share_one_execution(self, tmp_path):
        counted = Counted()

        async def main():
            fns = [counted] * 3
            async with Fabric(tmp_path, cell_fns=fns) as fab:
                client = await fab.client()
                a, b = await asyncio.gather(
                    client.submit(JOB, timeout=60),
                    client.submit(JOB, timeout=60))
                coalesced = fab.coordinator.metrics.counter(
                    "cluster.jobs.coalesced").value
                await client.close()
                return a, b, coalesced

        a, b, coalesced = asyncio.run(main())
        assert a["type"] == b["type"] == "result"
        assert canon(a["run"]) == canon(b["run"])
        assert coalesced == 1
        assert sum(counted.counts.values()) == 1


# ----------------------------------------------------------------------
# Work stealing: at-most-once
# ----------------------------------------------------------------------


class TestWorkStealing:
    def test_steal_moves_queued_jobs_without_double_execution(self, tmp_path):
        gate = threading.Event()
        slow = Counted(gate=gate)       # node 0: every execution blocks
        fast = Counted()

        async def main():
            async with Fabric(tmp_path, n_nodes=2, cell_fns=[slow, fast],
                              steal_interval=0.05) as fab:
                coord = fab.coordinator
                jobs = fab.jobs_for_node(0, 4)
                client = await fab.client()
                tasks = [asyncio.ensure_future(client.submit(j, timeout=60))
                         for j in jobs]
                await wait_until(
                    lambda: coord.metrics.counter("cluster.steals").value >= 1,
                    what="a confirmed steal")
                gate.set()
                resps = await asyncio.gather(*tasks)
                steals = coord.metrics.counter("cluster.steals").value
                victim_cancelled = fab.services[0].metrics.counter(
                    "jobs.cancelled").value
                await client.close()
                return resps, steals, victim_cancelled

        resps, steals, victim_cancelled = asyncio.run(main())
        assert all(r["type"] == "result" for r in resps)
        assert steals >= 1 and victim_cancelled == steals
        # The at-most-once proof: across both nodes every digest ran
        # exactly once, steals included.
        executed = {}
        for counted in (slow, fast):
            for digest, n in counted.counts.items():
                executed[digest] = executed.get(digest, 0) + n
        assert all(n == 1 for n in executed.values()), executed
        assert sum(fast.counts.values()) >= 1   # something actually moved

    def test_started_jobs_answer_busy_and_stay_put(self, tmp_path):
        gate = threading.Event()
        slow = Counted(gate=gate)

        async def main():
            async with Fabric(tmp_path, n_nodes=2,
                              cell_fns=[slow, Counted()]) as fab:
                job = fab.jobs_for_node(0, 1)[0]
                digest = protocol.job_to_cell(job).digest()
                client = await fab.client()
                task = asyncio.ensure_future(client.submit(job, timeout=60))
                await wait_until(lambda: slow.counts.get(digest),
                                 what="the job to start on its owner")
                verdict = await client.cancel(digest, timeout=10)
                gate.set()
                resp = await task
                await client.close()
                return verdict, resp

        verdict, resp = asyncio.run(main())
        assert verdict["outcome"] == "busy"
        assert resp["type"] == "result"

    def test_cancel_unknown_digest(self, tmp_path):
        async def main():
            async with Fabric(tmp_path, n_nodes=1) as fab:
                client = await fab.client()
                verdict = await client.cancel("f" * 64, timeout=10)
                await client.close()
                return verdict

        assert asyncio.run(main())["outcome"] == "unknown"


# ----------------------------------------------------------------------
# Node failure and membership
# ----------------------------------------------------------------------


class TestFailureAndMembership:
    def test_node_death_reroutes_inflight_jobs(self, tmp_path):
        gate = threading.Event()
        doomed = Counted(gate=gate)
        survivor = Counted()

        async def main():
            async with Fabric(tmp_path, n_nodes=2,
                              cell_fns=[doomed, survivor]) as fab:
                coord = fab.coordinator
                job = fab.jobs_for_node(0, 1)[0]
                digest = protocol.job_to_cell(job).digest()
                client = await fab.client()
                task = asyncio.ensure_future(client.submit(job, timeout=60))
                await wait_until(lambda: doomed.counts.get(digest),
                                 what="the job to start on its owner")
                await fab.services[0].close()     # the node "dies"
                gate.set()                        # unblock its zombie thread
                resp = await task
                stats = await client.status(timeout=30)
                reroutes = coord.metrics.counter("cluster.reroutes").value
                await client.close()
                return resp, stats, reroutes, digest

        resp, stats, reroutes, digest = asyncio.run(main())
        assert resp["type"] == "result"
        assert resp["meta"]["node"].endswith("w1.sock")
        assert reroutes >= 1
        assert stats["cluster"]["dead"] and \
            stats["cluster"]["dead"][0].endswith("w0.sock")
        # Node death is the legitimate re-execution case (the victim's
        # work died with it) — the survivor ran the cell once.
        assert survivor.counts.get(digest) == 1

    def test_join_and_leave_rehash_the_ring(self, tmp_path):
        async def main():
            async with Fabric(tmp_path, n_nodes=3) as fab:
                sock = fab.coordinator.config.socket_path
                extra = str(fab.tmp_path / "w-extra.sock")
                svc = ExperimentService(ServiceConfig(
                    store=str(fab.tmp_path / "shard-extra"),
                    socket_path=extra, workers=1))
                await svc.start()
                try:
                    joined = await raw_op(sock, {
                        "op": "join", "id": 1, "node": f"unix:{extra}"})
                    after_join = list(fab.coordinator.members.live_ids())
                    left = await raw_op(sock, {
                        "op": "leave", "id": 2, "node": f"unix:{extra}"})
                    after_leave = list(fab.coordinator.members.live_ids())
                finally:
                    await svc.close()
                return joined, after_join, left, after_leave

        joined, after_join, left, after_leave = asyncio.run(main())
        assert joined["type"] == "joined"
        assert joined["node_id"].endswith("w-extra.sock")
        assert sorted(joined["nodes"]) == sorted(after_join)
        assert len(after_join) == 4
        assert left["type"] == "left" and len(after_leave) == 3

    def test_workers_reject_cluster_ops(self, tmp_path):
        async def main():
            async with Fabric(tmp_path, n_nodes=1) as fab:
                resp = await raw_op(
                    fab.services[0].config.socket_path,
                    {"op": "join", "id": 1, "node": "unix:/x"})
                return resp

        resp = asyncio.run(main())
        assert resp["type"] == "error" and resp["code"] == 400


# ----------------------------------------------------------------------
# Scatter-gather aggregation
# ----------------------------------------------------------------------


class TestAggregation:
    def test_status_sums_counters_and_exactly_merges_pauses(self, tmp_path):
        jobs = [dict(JOB, seed=s, gc=gc)
                for gc in ("Serial", "ParallelOld") for s in (0, 1)]

        async def main():
            async with Fabric(tmp_path) as fab:
                client = await fab.client()
                await asyncio.gather(
                    *(client.submit(j, timeout=60) for j in jobs))
                stats = await client.status(timeout=30)
                await client.close()
                return stats

        stats = asyncio.run(main())
        nodes = stats["nodes"]
        assert len(nodes) == 3
        # Counters: the totals section is the exact per-name sum.
        for name, total in stats["totals"]["counters"].items():
            assert total == sum(
                ns["metrics"]["counters"].get(name, 0)
                for ns in nodes.values()), name
        assert stats["totals"]["cache"]["misses"] == len(jobs)
        # Pauses: the aggregate equals a hand-made LogHistogram merge of
        # the per-node histograms (exact, not an average of summaries).
        reference = None
        for ns in nodes.values():
            h = LogHistogram.from_dict(ns["pauses"]["hist"])
            if reference is None:
                reference = h
            else:
                reference.merge(h)
        assert stats["pauses"]["count"] == reference.total_count > 0
        for q, key in ((50.0, "p50"), (99.0, "p99")):
            assert stats["pauses"][key] == reference.percentile(q)
        assert stats["pauses"]["max"] == reference.max_raw
        # The merged histogram rides along for higher-level aggregation.
        assert LogHistogram.from_dict(
            stats["pauses"]["hist"]).total_count == reference.total_count

    def test_drain_reports_aggregate_and_stops_admission(self, tmp_path):
        async def main():
            async with Fabric(tmp_path, n_nodes=2) as fab:
                client = await fab.client()
                await client.submit(JOB, timeout=60)
                msg = await client.drain(timeout=60)
                late = await client.submit(JOB, timeout=10)
                await client.close()
                return msg, late

        msg, late = asyncio.run(main())
        assert msg["type"] == "drained"
        assert msg["stats"]["totals"]["cache"]["misses"] == 1
        assert msg["stats"]["draining"] is True
        assert late["type"] == "rejected" and late["code"] == 503
