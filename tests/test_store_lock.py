"""Multi-process contention tests for the ResultStore advisory lock.

The store is shared mutable state between a long-lived ``repro-serve``
service and concurrent ``repro-campaign`` invocations; these tests hammer
one store directory from several real processes and assert nothing is
lost, interleaved or resurrected.
"""

import json
import multiprocessing

from repro.campaign import CellSpec, ResultStore
from repro.campaign.store import store_status

APPENDS_PER_PROC = 20


def _cell(proc: int, i: int) -> CellSpec:
    return CellSpec.from_axes("lusearch", "Serial", "1g", "256m",
                              proc * 1000 + i, iterations=2)


def _hammer(root: str, proc: int) -> None:
    """Worker: append failure records as fast as possible."""
    store = ResultStore(root)
    for i in range(APPENDS_PER_PROC):
        store.record_failure(_cell(proc, i), "timeout",
                             f"proc {proc} record {i}", attempts=1)


def _hammer_with_compact(root: str, proc: int) -> None:
    """Worker: interleave appends with full compactions."""
    store = ResultStore(root)
    for i in range(APPENDS_PER_PROC):
        store.record_failure(_cell(proc, i), "timeout",
                             f"proc {proc} record {i}", attempts=1)
        if i % 5 == 4:
            store.compact()


class TestConcurrentAppends:
    def _run(self, tmp_path, target, procs=4):
        root = str(tmp_path / "store")
        ResultStore(root)       # create the directory up front
        ctx = multiprocessing.get_context("spawn")
        workers = [ctx.Process(target=target, args=(root, p))
                   for p in range(procs)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=120)
            assert w.exitcode == 0
        return ResultStore(root)

    def test_no_records_lost_or_corrupted(self, tmp_path):
        store = self._run(tmp_path, _hammer)
        assert len(store) == 4 * APPENDS_PER_PROC
        assert store.quarantined_lines == 0
        # Every line on disk parses and carries a coherent record.
        digests = set()
        for line in store.records_path.read_text().splitlines():
            rec = json.loads(line)
            assert rec["status"] == "failed" and rec["kind"] == "timeout"
            digests.add(rec["digest"])
        assert len(digests) == 4 * APPENDS_PER_PROC

    def test_concurrent_compaction_keeps_all_records(self, tmp_path):
        # Compactions racing appends from sibling processes must merge
        # the on-disk state, not rewrite from local memory alone.
        store = self._run(tmp_path, _hammer_with_compact)
        assert len(store) == 4 * APPENDS_PER_PROC
        assert store.quarantined_lines == 0
        store.compact()
        assert len(ResultStore(store.root)) == 4 * APPENDS_PER_PROC

    def test_status_after_contention(self, tmp_path):
        store = self._run(tmp_path, _hammer, procs=2)
        status = store_status(store)
        assert status["records"] == 2 * APPENDS_PER_PROC
        assert status["failed"] == 2 * APPENDS_PER_PROC
        assert status["ok"] == 0 and status["quarantined_lines"] == 0


class TestCompactMerge:
    def test_compact_does_not_drop_foreign_records(self, tmp_path):
        # Open two handles on one store (stand-ins for two processes).
        ours = ResultStore(tmp_path / "store")
        theirs = ResultStore(tmp_path / "store")
        ours.record_failure(_cell(0, 0), "timeout", "ours", attempts=1)
        theirs.record_failure(_cell(1, 0), "timeout", "theirs", attempts=1)
        # `ours` never saw `theirs`' record; its compact must keep it.
        ours.compact()
        fresh = ResultStore(tmp_path / "store")
        assert len(fresh) == 2

    def test_compact_does_not_resurrect_dropped_failures(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.record_failure(_cell(0, 0), "timeout", "x", attempts=1)
        assert store.drop_failures() == 1
        store.compact()
        assert len(ResultStore(store.root)) == 0

    def test_lock_file_is_sidecar(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with store.locked():
            pass
        assert store.lock_path.exists()
        # The lock file never pollutes the record scan.
        store.record_failure(_cell(0, 0), "timeout", "x", attempts=1)
        assert len(ResultStore(store.root)) == 1
