"""Tests for the synthetic DaCapo suite: profiles, harness, selection."""

import pytest

from repro import JVM, BenchmarkCrash
from repro.errors import ConfigError
from repro.units import GB, MB
from repro.workloads.dacapo import (
    ALL_BENCHMARKS,
    CRASHING_BENCHMARKS,
    PROFILES,
    STABLE_SUBSET,
    get_benchmark,
    select_stable_subset,
)


class TestProfiles:
    def test_fourteen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 14

    def test_paper_crashers(self):
        assert CRASHING_BENCHMARKS == ["eclipse", "tradebeans", "tradesoap"]

    def test_stable_subset_is_papers_table2(self):
        assert set(STABLE_SUBSET) == {
            "h2", "tomcat", "xalan", "jython", "pmd", "luindex", "batik"
        }

    def test_single_threaded_benchmarks(self):
        assert PROFILES["batik"].threads == 1
        assert PROFILES["fop"].threads == 1
        assert PROFILES["luindex"].threads == 2

    def test_per_core_benchmarks_use_all_cores(self):
        assert PROFILES["xalan"].threads_for(48) == 48
        assert PROFILES["h2"].threads_for(8) == 8

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            get_benchmark("nope")

    def test_profiles_have_positive_volumes(self):
        for name, p in PROFILES.items():
            assert p.iteration_wall_seconds > 0, name
            assert p.alloc.alloc_bytes_per_iteration > 0, name


class TestHarness:
    def _run(self, cfg, name="lusearch", **kw):
        kw.setdefault("iterations", 3)
        kw.setdefault("system_gc", True)
        return JVM(cfg).run(get_benchmark(name), **kw)

    def test_records_iteration_times(self, small_jvm_config):
        result = self._run(small_jvm_config(), iterations=3)
        assert len(result.iteration_times) == 3
        assert all(t > 0 for t in result.iteration_times)

    def test_system_gc_between_iterations(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        jvm.run(get_benchmark("lusearch"), iterations=4, system_gc=True)
        explicit = [p for p in jvm.gc_log.pauses if p.cause == "System.gc()"]
        assert len(explicit) == 3  # between every two of 4 iterations

    def test_no_system_gc_when_disabled(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        jvm.run(get_benchmark("lusearch"), iterations=4, system_gc=False)
        assert not any(p.cause == "System.gc()" for p in jvm.gc_log.pauses)

    def test_crashing_benchmark_crashes(self, small_jvm_config):
        result = self._run(small_jvm_config(), name="eclipse")
        assert result.crashed
        assert "BenchmarkCrash" in result.crash_reason

    def test_thread_override(self, small_jvm_config):
        result = self._run(small_jvm_config(), name="lusearch", threads=2)
        assert result.extras["n_threads"] == 2

    def test_deterministic_given_seed(self, small_jvm_config):
        a = self._run(small_jvm_config(seed=5))
        b = self._run(small_jvm_config(seed=5))
        assert a.execution_time == b.execution_time
        assert a.iteration_times == b.iteration_times

    def test_different_seeds_differ(self, small_jvm_config):
        a = self._run(small_jvm_config(seed=5))
        b = self._run(small_jvm_config(seed=6))
        assert a.execution_time != b.execution_time

    def test_live_set_established(self, small_jvm_config):
        result = self._run(small_jvm_config(heap=2 * GB, young=256 * MB), name="h2")
        assert result.extras["live_set_bytes"] > 0


class TestStableSubsetSelection:
    def test_selection_marks_crashers_unstable(self, small_jvm_config):
        def run_fn(name, seed):
            cfg = small_jvm_config(seed=seed, heap=2 * GB, young=256 * MB)
            return JVM(cfg).run(get_benchmark(name), iterations=3)

        table = select_stable_subset(
            run_fn, runs=2, benchmarks=["eclipse", "lusearch"]
        )
        assert table["eclipse"]["crashed"] is True
        assert table["eclipse"]["stable"] is False
        assert table["lusearch"]["crashed"] is False
        assert "rsd_final" in table["lusearch"]
