"""Tests for DES processes: generators, waiting, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import AnyOf, Engine, Event, Interrupt, Process, Timeout


class TestBasicProcess:
    def test_process_runs_to_completion(self):
        eng = Engine()
        log = []

        def proc():
            yield eng.timeout(1.0)
            log.append(eng.now)
            yield eng.timeout(2.0)
            log.append(eng.now)

        eng.process(proc())
        eng.run()
        assert log == [1.0, 3.0]

    def test_process_return_value_becomes_event_value(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            return 42

        p = eng.process(proc())
        eng.run()
        assert p.value == 42

    def test_process_is_alive_until_done(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)

        p = eng.process(proc())
        assert p.is_alive
        eng.run()
        assert not p.is_alive

    def test_waiting_on_another_process(self):
        eng = Engine()
        order = []

        def child():
            yield eng.timeout(2.0)
            order.append("child")
            return "result"

        def parent():
            value = yield eng.process(child())
            order.append("parent")
            assert value == "result"

        eng.process(parent())
        eng.run()
        assert order == ["child", "parent"]

    def test_yielding_non_event_raises(self):
        eng = Engine()

        def proc():
            yield 5

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(TypeError):
            Process(eng, lambda: None)

    def test_yield_already_processed_event_resumes_immediately(self):
        eng = Engine()
        done = eng.event()
        done.succeed("v")
        eng.run()  # process the event
        got = []

        def proc():
            value = yield done
            got.append((eng.now, value))

        eng.process(proc())
        eng.run()
        assert got == [(0.0, "v")]


class TestEventTriggering:
    def test_succeed_wakes_waiter_with_value(self):
        eng = Engine()
        gate = eng.event()
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        def signaller():
            yield eng.timeout(3.0)
            gate.succeed("go")

        eng.process(waiter())
        eng.process(signaller())
        eng.run()
        assert got == ["go"]

    def test_fail_raises_in_waiter(self):
        eng = Engine()
        gate = eng.event()

        def waiter():
            with pytest.raises(ValueError):
                yield gate
            yield eng.timeout(1.0)

        def signaller():
            yield eng.timeout(1.0)
            gate.fail(ValueError("boom"))

        eng.process(waiter())
        eng.process(signaller())
        eng.run()
        assert eng.now == 2.0

    def test_double_succeed_raises(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")

    def test_negative_timeout_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)


class TestInterrupts:
    def test_interrupt_delivered_at_wait_point(self):
        eng = Engine()
        log = []

        def victim():
            try:
                yield eng.timeout(10.0)
                log.append("finished")
            except Interrupt as i:
                log.append(("interrupted", eng.now, i.cause))

        p = eng.process(victim())

        def interrupter():
            yield eng.timeout(2.0)
            p.interrupt("safepoint")

        eng.process(interrupter())
        eng.run()
        assert log == [("interrupted", 2.0, "safepoint")]

    def test_interrupted_process_can_continue(self):
        eng = Engine()
        log = []

        def victim():
            remaining = 10.0
            start = eng.now
            try:
                yield eng.timeout(remaining)
            except Interrupt:
                remaining -= eng.now - start
                yield eng.timeout(remaining)
            log.append(eng.now)

        p = eng.process(victim())

        def interrupter():
            yield eng.timeout(4.0)
            p.interrupt()

        eng.process(interrupter())
        eng.run()
        assert log == [10.0]  # no simulated time lost to the interrupt

    def test_interrupt_finished_process_raises(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1.0)

        p = eng.process(quick())
        eng.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_unhandled_interrupt_is_an_error(self):
        eng = Engine()

        def victim():
            yield eng.timeout(10.0)

        p = eng.process(victim())

        def interrupter():
            yield eng.timeout(1.0)
            p.interrupt()

        eng.process(interrupter())
        with pytest.raises(SimulationError):
            eng.run()

    def test_interrupt_racing_with_completion_is_dropped(self):
        eng = Engine()

        def victim():
            yield eng.timeout(1.0)

        p = eng.process(victim())

        def interrupter():
            yield eng.timeout(1.0)
            if p.is_alive:
                p.interrupt()

        eng.process(interrupter())
        eng.run()  # must not raise
        assert not p.is_alive


class TestAnyOf:
    def test_anyof_triggers_on_first(self):
        eng = Engine()
        got = []

        def proc():
            first = yield AnyOf(eng, [eng.timeout(5.0, "slow"), eng.timeout(2.0, "fast")])
            got.append((eng.now, first.value))

        eng.process(proc())
        eng.run()
        assert got == [(2.0, "fast")]

    def test_anyof_empty_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            AnyOf(eng, [])
