"""Tests for size/time units and HotSpot size-flag parsing."""

import pytest

from repro.errors import ConfigError
from repro.units import (
    GB,
    KB,
    MB,
    fmt_bytes,
    fmt_time,
    parse_size,
)


class TestParseSize:
    def test_plain_number(self):
        assert parse_size(4096) == 4096.0

    def test_float_number(self):
        assert parse_size(1.5) == 1.5

    def test_kilobytes(self):
        assert parse_size("512k") == 512 * KB

    def test_megabytes(self):
        assert parse_size("5600m") == 5600 * MB

    def test_gigabytes(self):
        assert parse_size("64g") == 64 * GB

    def test_uppercase_suffix(self):
        assert parse_size("16G") == 16 * GB

    def test_with_b_suffix(self):
        assert parse_size("2gb") == 2 * GB

    def test_fractional(self):
        assert parse_size("1.5G") == 1.5 * GB

    def test_bare_bytes_string(self):
        assert parse_size("4096") == 4096.0

    def test_terabytes(self):
        assert parse_size("1t") == 1024 * GB

    def test_whitespace_tolerated(self):
        assert parse_size("  8g  ") == 8 * GB

    def test_negative_number_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("")

    def test_none_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(None)


class TestFormat:
    def test_fmt_bytes_gb(self):
        assert fmt_bytes(5.6 * GB) == "5.6GB"

    def test_fmt_bytes_mb(self):
        assert fmt_bytes(200 * MB) == "200MB"

    def test_fmt_bytes_small(self):
        assert fmt_bytes(17) == "17B"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-2 * KB).startswith("-")

    def test_fmt_time_minutes(self):
        assert fmt_time(240) == "4.0min"

    def test_fmt_time_seconds(self):
        assert fmt_time(3.5) == "3.50s"

    def test_fmt_time_millis(self):
        assert fmt_time(0.017) == "17ms"

    def test_fmt_time_micros(self):
        assert fmt_time(2e-6) == "2us"

    def test_units_are_binary(self):
        assert KB == 1024 and MB == 1024 ** 2 and GB == 1024 ** 3
