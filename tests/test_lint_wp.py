"""Tests for the simlint v2 whole-program pass: call graph, taint,
the SL1xx rules against the seeded fixture project, caching, and the
SARIF output contract."""

import ast
import json
import pathlib
import shutil

import pytest

from repro.lint import (
    ProjectContext,
    TaintAnalysis,
    default_wp_rules,
    run_lint,
)
from repro.lint.graph import build_import_map, module_name_for
from repro.lint.rules import WallClockRule
from repro.lint.rules_wp import WP_RULES_BY_ID
from repro.lint.sarif import to_sarif, validate, write_sarif
from repro.lint.taint import SOURCES, SOURCE_PREFIXES

FIX = pathlib.Path(__file__).parent / "fixtures" / "lint_wp"
REPO_SRC = pathlib.Path(__file__).parent.parent / "src"


def build_project(root=FIX, cache_dir=None):
    sources = {}
    for p in sorted(root.rglob("*.py")):
        text = p.read_text(encoding="utf-8")
        sources[str(p)] = (text, ast.parse(text))
    return ProjectContext.build(sources, roots=[str(root)],
                                cache_dir=cache_dir)


def wp_result(root=FIX, **kwargs):
    return run_lint([str(root)], default_wp_rules(), **kwargs)


def findings_for(rule_id, result=None):
    result = result if result is not None else wp_result()
    return [f for f in result.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------


class TestGraph:
    def test_module_naming_drops_src_and_init(self):
        assert module_name_for("src/repro/sim/engine.py", ["src"]) == \
            "repro.sim.engine"
        assert module_name_for("src/repro/gc/__init__.py", ["src"]) == \
            "repro.gc"

    def test_relative_imports_resolve(self):
        tree = ast.parse("from ..util.indirect import hop\n")
        imports = build_import_map(tree, "proj.sim.engine_bad")
        assert imports["hop"] == "proj.util.indirect.hop"

    def test_cross_module_call_edges_resolve(self):
        proj = build_project()
        tick = next(f for q, f in proj.functions.items()
                    if q.endswith("engine_bad.tick"))
        resolved = {c.resolved for c in tick.calls if c.resolved}
        assert any(r.endswith("indirect.hop") for r in resolved)

    def test_alias_call_carries_source_alt_name(self):
        proj = build_project()
        stamp = next(f for q, f in proj.functions.items()
                     if q.endswith("clockutil.stamp"))
        alts = {a for c in stamp.calls for a in c.alt_names}
        assert "time.time" in alts

    def test_find_path_is_deterministic(self):
        proj = build_project()
        tick = next(q for q in proj.functions if q.endswith("engine_bad.tick"))
        chains = [proj.find_path(
            tick, lambda s: "time.time" in (s.name,) + tuple(s.alt_names))
            for _ in range(3)]
        rendered = [[(c.name, c.lineno) for c in chain] for chain in chains]
        assert rendered[0] == rendered[1] == rendered[2]


# ----------------------------------------------------------------------
# The rules against the fixture project
# ----------------------------------------------------------------------


class TestSL101:
    def test_flags_transitive_and_direct_blocking(self):
        found = findings_for("SL101")
        by_line = {(pathlib.PurePath(f.path).name, f.line) for f in found}
        assert ("service_bad.py", 19) in by_line     # handler -> write_log -> open
        assert ("service_bad.py", 23) in by_line     # nap -> time.sleep
        # The executor-offloading twin stays clean.
        assert not any("service_ok" in f.path for f in found)

    def test_related_location_is_the_blocking_terminal(self):
        handler = next(f for f in findings_for("SL101") if f.line == 19)
        assert handler.related_path.endswith("service_bad.py")
        assert handler.related_line == 14            # the open() in write_log

    def test_message_names_the_route(self):
        handler = next(f for f in findings_for("SL101") if f.line == 19)
        assert "write_log" in handler.message
        assert "open" in handler.message


class TestSL102:
    def test_catches_two_hop_wallclock_leak(self):
        found = findings_for("SL102")
        assert len(found) == 1
        f = found[0]
        assert f.path.endswith("engine_bad.py")
        # The full route is spelled out: ≥2 intermediate project calls.
        assert "hop" in f.message and "stamp" in f.message
        assert "time.time" in f.message
        assert f.related_path.endswith("clockutil.py")

    def test_injected_clock_stays_clean(self):
        assert not any("engine_ok" in f.path for f in findings_for("SL102"))

    def test_sources_match_sl001(self):
        # The taint source set is SL001's forbidden set — if one grows,
        # the other must too, or indirect leaks of the new source pass.
        assert SOURCES == WallClockRule.FORBIDDEN
        assert set(SOURCE_PREFIXES).issubset(WallClockRule.FORBIDDEN_PREFIXES)

    def test_direct_reads_are_not_duplicated(self):
        # stamp() reads the clock directly; that is SL001's finding, and
        # SL102 (min_hops=1) must not re-report it.
        assert not any("clockutil" in f.path for f in findings_for("SL102"))

    def test_taint_analysis_witness_api(self):
        proj = build_project()
        taint = TaintAnalysis(proj)
        tick = next(q for q in proj.functions if q.endswith("engine_bad.tick"))
        w = taint.witness(tick, min_hops=1)
        assert w is not None
        assert w.source == "time.time"
        assert w.hops == 3
        assert w.describe().endswith("time.time")


class TestSL103:
    def test_flags_unlocked_store_write(self):
        found = findings_for("SL103")
        assert len(found) == 1
        assert found[0].path.endswith("store_bad.py")
        assert "append_unlocked" in found[0].message

    def test_compliant_shapes_stay_clean(self):
        # Lexical lock, caller-holds-lock, and the locked() method
        # itself: all exempt.
        assert not any("store_ok" in f.path for f in findings_for("SL103"))


class TestSL104:
    def test_flags_bare_and_dangling_spawns(self):
        found = findings_for("SL104")
        lines = {f.line for f in found}
        assert lines == {31, 35}
        messages = " ".join(f.message for f in found)
        assert "discarded" in messages
        assert "never-read local" in messages

    def test_tracked_task_stays_clean(self):
        assert not any("service_ok" in f.path for f in findings_for("SL104"))


class TestSL105:
    def test_flags_live_exception_crossing_pool(self):
        found = findings_for("SL105")
        assert len(found) == 1
        f = found[0]
        assert f.path.endswith("exec_bad.py")
        assert "BaseException" in f.message
        # Related location anchors the offending field declaration.
        assert f.related_path.endswith("exec_bad.py")

    def test_getstate_takes_over_serialization(self):
        assert not any("exec_ok" in f.path for f in findings_for("SL105"))

    def test_repo_cellfailure_passes(self):
        # The real CellFailure carries exc: Optional[BaseException] but
        # defines __getstate__ — the exemplar the rule exists to bless.
        result = run_lint([str(REPO_SRC)], default_wp_rules())
        assert not [f for f in result.findings if f.rule_id == "SL105"]


# ----------------------------------------------------------------------
# Driver properties: suppression ends, determinism, parallel, cache
# ----------------------------------------------------------------------


class TestWpDriver:
    def test_rule_registry(self):
        assert set(WP_RULES_BY_ID) == {
            "SL101", "SL102", "SL103", "SL104", "SL105"}

    def test_findings_are_deterministic(self):
        a = [f.format() for f in wp_result().findings]
        b = [f.format() for f in wp_result().findings]
        assert a == b

    def test_parallelism_does_not_change_output(self):
        serial = [f.format() for f in wp_result(jobs=1).findings]
        threaded = [f.format() for f in wp_result(jobs=8).findings]
        assert serial == threaded

    def test_suppression_at_source_line_silences(self, tmp_path):
        root = tmp_path / "proj"
        shutil.copytree(FIX / "proj", root)
        bad = root / "sim" / "engine_bad.py"
        bad.write_text(bad.read_text().replace(
            "return state + hop()",
            "return state + hop()  # simlint: disable=SL102 -- replay tool"))
        result = run_lint([str(tmp_path)], default_wp_rules())
        assert not [f for f in result.findings if f.rule_id == "SL102"]
        assert any(f.rule_id == "SL102" for f in result.suppressed)

    def test_suppression_at_sink_line_silences(self, tmp_path):
        root = tmp_path / "proj"
        shutil.copytree(FIX / "proj", root)
        clock = root / "util" / "clockutil.py"
        clock.write_text(clock.read_text().replace(
            "    return WALL()",
            "    return WALL()  # simlint: disable=SL102 -- calibration source"))
        result = run_lint([str(tmp_path)], default_wp_rules())
        assert not [f for f in result.findings if f.rule_id == "SL102"]
        assert any(f.rule_id == "SL102" for f in result.suppressed)

    def test_ast_cache_round_trip(self, tmp_path):
        cache = tmp_path / "cache"
        first = wp_result(cache_dir=str(cache))
        cached_files = list(cache.glob("*.json"))
        assert cached_files, "cache directory not populated"
        second = wp_result(cache_dir=str(cache))
        assert [f.format() for f in first.findings] == \
            [f.format() for f in second.findings]

    def test_stale_ir_version_is_ignored(self, tmp_path):
        cache = tmp_path / "cache"
        wp_result(cache_dir=str(cache))
        for p in cache.glob("*.json"):
            doc = json.loads(p.read_text())
            doc["_ir"] = -1
            p.write_text(json.dumps(doc))
        # Poisoned entries are re-extracted, not trusted.
        result = wp_result(cache_dir=str(cache))
        assert findings_for("SL102", result)


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------


class TestSarif:
    def test_document_validates_against_schema_subset(self):
        result = wp_result()
        doc = to_sarif(result, default_wp_rules())
        assert validate(doc) == []
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_results_carry_locations_and_related(self):
        doc = to_sarif(wp_result(), default_wp_rules())
        results = doc["runs"][0]["results"]
        assert len(results) >= 6
        sl102 = next(r for r in results if r["ruleId"] == "SL102")
        loc = sl102["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("engine_bad.py")
        assert sl102["relatedLocations"][0]["physicalLocation"][
            "artifactLocation"]["uri"].endswith("clockutil.py")

    def test_driver_lists_every_rule(self):
        doc = to_sarif(wp_result(), default_wp_rules())
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"SL101", "SL102", "SL103", "SL104", "SL105"} <= ids

    def test_baselined_findings_marked_unchanged(self, tmp_path):
        from repro.lint import assign_keys
        first = wp_result()
        keys = {key for _, key in assign_keys(first.findings)}
        second = wp_result(baseline=keys)
        assert not second.findings and second.baselined
        doc = to_sarif(second, default_wp_rules())
        states = {r.get("baselineState") for r in doc["runs"][0]["results"]}
        assert states == {"unchanged"}
        assert validate(doc) == []

    def test_write_sarif_emits_valid_json(self, tmp_path):
        out = tmp_path / "lint.sarif"
        write_sarif(out, wp_result(), default_wp_rules())
        doc = json.loads(out.read_text())
        assert validate(doc) == []

    def test_validator_rejects_broken_documents(self):
        assert validate({"runs": []})           # missing version
        assert validate({"version": "2.0.0", "runs": []})   # bad enum
        assert validate({"version": "2.1.0",
                         "runs": [{"tool": {}}]})           # missing driver
