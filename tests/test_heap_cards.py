"""Card-table / remembered-set structures and their heap invariants.

The hypothesis properties here are the mechanical form of the ISSUE 9
remset-fidelity contract: the dirty-card count never exceeds the heap's
card capacity, remembered-set cards are conserved across region
evacuation, and a young scan resets the card structures consistently.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, HeapError
from repro.heap import (CARD_SIZE, CardTable, GenerationalHeap, HeapConfig,
                        RememberedSet, cards_for)
from repro.heap.lifetime import Exponential
from repro.heap.regions import RegionTable
from repro.units import GB, MB


def make_heap(heap_bytes=1 * GB, young=None):
    return GenerationalHeap(HeapConfig(heap_bytes=heap_bytes,
                                       young_bytes=young or heap_bytes * 0.35))


def make_remset(heap_bytes=1 * GB):
    return RememberedSet(RegionTable.for_heap(heap_bytes))


class TestCardsFor:
    def test_zero_and_negative(self):
        assert cards_for(0) == 0
        assert cards_for(-10.0) == 0

    def test_rounds_up(self):
        assert cards_for(1.0) == 1
        assert cards_for(CARD_SIZE) == 1
        assert cards_for(CARD_SIZE + 1) == 2

    @given(st.floats(0.0, 1e12))
    @settings(max_examples=60, deadline=None)
    def test_covers_the_bytes(self, n):
        assert cards_for(n) * CARD_SIZE >= n


class TestCardTable:
    def test_rejects_empty_coverage(self):
        with pytest.raises(ConfigError):
            CardTable(0.0)

    def test_rejects_negative_dirty(self):
        table = CardTable(1 * GB)
        with pytest.raises(ConfigError):
            table.dirty(-1.0, 10 * MB)

    def test_dirty_returns_added_count(self):
        table = CardTable(1 * GB)
        added = table.dirty(10 * CARD_SIZE, 100 * MB)
        assert added == 10
        assert table.dirty_cards_count == 10
        assert table.dirty_bytes == 10 * CARD_SIZE

    def test_clear(self):
        table = CardTable(1 * GB)
        table.dirty(5 * CARD_SIZE, 100 * MB)
        table.clear()
        assert table.dirty_cards_count == 0

    @given(st.lists(st.tuples(st.floats(0.0, 64 * 1024 * 1024),
                              st.floats(0.0, 2e9)),
                    min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_count_bounded_by_heap_cards(self, writes):
        """Dirty cards never exceed the covered-heap card capacity nor
        the cards spanned by the largest old-gen footprint seen (the cap
        bounds additions at write time; shrinking `used` later does not
        retroactively clean cards)."""
        table = CardTable(1 * GB)
        max_used_cards = 0
        for n_bytes, used in writes:
            max_used_cards = max(max_used_cards, cards_for(used))
            table.dirty(n_bytes, used)
            assert 0 <= table.dirty_cards_count <= table.total_cards
            assert table.dirty_cards_count <= min(max_used_cards,
                                                  table.total_cards)

    @given(st.lists(st.floats(0.0, 16 * 1024 * 1024),
                    min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_added_deltas_sum_to_count(self, sizes):
        table = CardTable(1 * GB)
        total = sum(table.dirty(n, 1 * GB) for n in sizes)
        assert total == table.dirty_cards_count


class TestRememberedSet:
    def test_record_spreads_over_occupied_prefix(self):
        rs = make_remset()
        rs.record(6, 3)
        assert sum(rs.per_region[:3]) == 6
        assert rs.total_cards == 6

    def test_occupied(self):
        rs = make_remset()
        rs.record(4, 2)
        assert rs.occupied() == 2

    def test_clear_resets_cursor(self):
        rs = make_remset()
        rs.record(5, 3)
        rs.clear()
        assert rs.total_cards == 0
        rs.record(1, 3)
        assert rs.per_region[0] == 1  # cursor restarted at region 0

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 64)),
                    min_size=1, max_size=25),
           st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                    min_size=1, max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_bytes_conserved_across_evacuation(self, records, moves):
        """Evacuating a region moves its remembered cards to the target
        without creating or destroying any."""
        rs = make_remset()
        for n_cards, occupied in records:
            rs.record(n_cards, occupied)
        before = rs.total_cards
        n = rs.regions.total_regions
        for src, dst in moves:
            src %= n
            dst %= n
            moved = rs.evacuate_region(src, dst)
            assert moved >= 0
            if src != dst:
                assert rs.per_region[src] == 0
        assert rs.total_cards == before
        assert rs.total_bytes == before * CARD_SIZE


class TestHeapCardIntegration:
    def test_heap_builds_card_table(self):
        heap = make_heap()
        assert heap.card_table.total_cards == cards_for(1 * GB)
        assert heap.remset is None

    def test_attach_remset_requires_clean_table(self):
        heap = make_heap()
        heap.allocate_old(0.0, 10 * MB, pinned=True)
        heap.dirty_cards(5 * MB)
        with pytest.raises(HeapError):
            heap.attach_remset(make_remset())

    def test_remset_tracks_card_table(self):
        heap = make_heap()
        heap.attach_remset(make_remset())
        heap.allocate_old(0.0, 50 * MB, pinned=True)
        heap.dirty_cards(5 * MB)
        assert heap.remset.total_cards == heap.card_table.dirty_cards_count
        heap.check_invariants(0.0)

    def test_minor_collection_resets_card_structures(self):
        """After a young scan the scalar and structural card models agree:
        both carry only the re-dirtied (promotion-driven) write traffic."""
        heap = make_heap()
        heap.attach_remset(make_remset())
        heap.allocate_old(0.0, 100 * MB, pinned=True)
        heap.dirty_cards(32 * MB)
        assert heap.card_table.dirty_cards_count > 0
        heap.allocate(0.0, 64 * MB, Exponential(1.0))
        heap.minor_collection(1.0, tenuring_threshold=4)
        assert heap.card_table.dirty_bytes == pytest.approx(
            cards_for(heap.dirty_card_bytes) * CARD_SIZE)
        assert heap.remset.total_cards == heap.card_table.dirty_cards_count
        heap.check_invariants(1.0)

    def test_full_collection_clears_cards(self):
        heap = make_heap()
        heap.attach_remset(make_remset())
        heap.allocate_old(0.0, 100 * MB, pinned=True)
        heap.dirty_cards(32 * MB)
        heap.full_collection(1.0, compacting=True)
        assert heap.card_table.dirty_cards_count == 0
        assert heap.remset.total_cards == 0
        assert heap.dirty_card_bytes == 0.0
        heap.check_invariants(1.0)

    @given(st.lists(st.tuples(st.floats(1 * MB, 64 * MB),
                              st.floats(0.0, 16 * MB)),
                    min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_through_alloc_dirty_collect(self, steps):
        """Random alloc/dirty/minor sequences keep remset and card table
        in lockstep (check_invariants enforces the sync)."""
        heap = make_heap()
        heap.attach_remset(make_remset())
        heap.allocate_old(0.0, 20 * MB, pinned=True)
        t = 0.0
        for alloc, dirty in steps:
            t += 1.0
            try:
                heap.allocate(t, alloc, Exponential(1.0))
            except Exception:
                heap.minor_collection(t, tenuring_threshold=4)
            heap.dirty_cards(dirty)
            heap.check_invariants(t)
        heap.minor_collection(t + 1.0, tenuring_threshold=4)
        heap.check_invariants(t + 1.0)


class TestFidelityPricing:
    def test_fidelity_prices_scans_off_card_table(self):
        """With card_fidelity on, the young scan volume comes from the
        explicit card table (card-granular), not the scalar estimate."""
        fine = make_heap()
        fine.card_fidelity = True
        coarse = make_heap()
        for heap in (fine, coarse):
            heap.allocate_old(0.0, 100 * MB, pinned=True)
            heap.dirty_cards(10 * MB + 1.0)   # not card-aligned
            heap.allocate(0.0, 32 * MB, Exponential(1.0))
        vol_fine = fine.minor_collection(1.0, tenuring_threshold=4)
        vol_coarse = coarse.minor_collection(1.0, tenuring_threshold=4)
        assert vol_fine.cards_scanned == pytest.approx(
            cards_for(10 * MB + 1.0) * CARD_SIZE)
        assert vol_coarse.cards_scanned == pytest.approx(10 * MB + 1.0)
        # Card granularity rounds *up*: fidelity never under-prices.
        assert vol_fine.cards_scanned >= vol_coarse.cards_scanned
