"""repro.perf: fast-path byte-identity pins and the repro-perf CLI.

The contract under test (DESIGN.md §12): the batched allocation fast
path may change how fast the simulator runs, but never what it
simulates. With the same seed, ``REPRO_FASTPATH=0`` and ``=1`` must
produce identical GC logs and identical telemetry traces — timestamps,
event order, logical event counts, everything — for every collector.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import GB, JVM, JVMConfig
from repro.gc import GC_NAMES
from repro.jvm.gclog import format_gc_log
from repro.perf import fastpath
from repro.perf.profile import profile_run
from repro.perf.report import SCHEMA, render_text, to_json
from repro.telemetry import Tracer
from repro.telemetry.export import write_trace
from repro.workloads.dacapo import get_benchmark

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_cell(gc: str, enabled: bool, tmp_path, tag: str):
    """One xalan run with the fast path forced on/off; returns
    (gc log text, trace file bytes)."""
    previous = fastpath.set_enabled(enabled)
    try:
        config = JVMConfig(gc=gc, heap=16 * GB, seed=3)
        tracer = Tracer()
        jvm = JVM(config, tracer=tracer)
        result = jvm.run(get_benchmark("xalan"), iterations=4, system_gc=True)
    finally:
        fastpath.set_enabled(previous)
    log_text = format_gc_log(result.gc_log, config.heap_bytes)
    trace_path = tmp_path / f"{gc}-{tag}.trace.jsonl"
    write_trace(tracer, str(trace_path))
    return log_text, trace_path.read_bytes()


class TestFastpathByteIdentity:
    @pytest.mark.parametrize("gc", GC_NAMES)
    def test_gc_log_and_trace_identical(self, gc, tmp_path):
        log_off, trace_off = _run_cell(gc, False, tmp_path, "off")
        log_on, trace_on = _run_cell(gc, True, tmp_path, "on")
        assert log_off == log_on
        assert trace_off == trace_on

    def test_set_enabled_returns_previous(self):
        initial = fastpath.enabled()
        assert fastpath.set_enabled(not initial) == initial
        assert fastpath.enabled() == (not initial)
        assert fastpath.set_enabled(initial) == (not initial)
        assert fastpath.enabled() == initial

    def test_env_gate_parsing(self):
        # Spawn fresh interpreters: ENABLED is read at import time.
        for value, expect in (("0", False), ("off", False), ("", True),
                              ("1", True), ("FALSE", False)):
            env = dict(os.environ)
            env["REPRO_FASTPATH"] = value
            env["PYTHONPATH"] = os.path.join(ROOT, "src")
            out = subprocess.run(
                [sys.executable, "-c",
                 "from repro.perf import fastpath; print(fastpath.ENABLED)"],
                env=env, capture_output=True, text=True, check=True,
            )
            assert out.stdout.strip() == str(expect), value


class TestProfileHarness:
    def test_profile_run_measures_the_cell(self):
        result = profile_run(
            JVMConfig(gc="CMS", heap=16 * GB, seed=1), "xalan",
            iterations=2, top=10,
        )
        assert not result.crashed
        assert result.sim_s > 0 and result.wall_s > 0
        assert result.events > 0
        assert result.pauses == result.event_kinds.get("gc_phase", 0)
        assert len(result.hotspots) == 10
        # Hot spots are sorted by self-time.
        tots = [h.tottime for h in result.hotspots]
        assert tots == sorted(tots, reverse=True)

    def test_profiled_run_matches_unprofiled_sim_output(self, tmp_path):
        """Profiling must not disturb the simulated results."""
        result = profile_run(
            JVMConfig(gc="G1", heap=16 * GB, seed=2), "xalan", iterations=3,
        )
        config = JVMConfig(gc="G1", heap=16 * GB, seed=2)
        jvm = JVM(config, tracer=Tracer())
        plain = jvm.run(get_benchmark("xalan"), iterations=3, system_gc=True)
        assert result.pauses == plain.gc_log.count
        assert result.sim_s == jvm.engine.now

    def test_report_renderers(self):
        result = profile_run(
            JVMConfig(gc="Serial", heap=16 * GB, seed=1), "xalan",
            iterations=1, top=5,
        )
        text = render_text(result)
        assert "repro-perf: xalan [SerialGC]" in text
        assert "engine events" in text
        doc = json.loads(to_json(result))
        assert doc["schema"] == SCHEMA
        assert doc["benchmark"] == "xalan"
        assert len(doc["hotspots"]) == 5


class TestPerfCli:
    def test_profile_text_and_json(self, tmp_path, capsys):
        from repro.perf.cli import main

        rc = main(["profile", "xalan", "-n", "2", "--gc", "CMS",
                   "--seed", "1", "--top", "5"])
        assert rc == 0
        assert "repro-perf: xalan [ConcMarkSweepGC]" in capsys.readouterr().out

        out = tmp_path / "perf.json"
        rc = main(["profile", "xalan", "-n", "2", "--gc", "CMS",
                   "--seed", "1", "--json", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["gc"] == "ConcMarkSweepGC"
        assert doc["pauses"] > 0

    def test_fastpath_subcommand(self, capsys):
        from repro.perf.cli import main

        assert main(["fastpath"]) == 0
        assert "fastpath:" in capsys.readouterr().out

    def test_entry_point_delegates(self, capsys):
        from repro.cli import perf_main

        assert perf_main(["fastpath"]) == 0
        capsys.readouterr()


class TestLintStaysClean:
    def test_perf_package_lints_clean(self):
        from repro.lint.core import run_lint

        result = run_lint([os.path.join(ROOT, "src", "repro", "perf")])
        assert result.files_checked >= 5
        assert [f.format() for f in result.findings] == []
        assert result.baselined == []
