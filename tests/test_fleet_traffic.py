"""The diurnal traffic model: shape, bursts, open-loop arrival counts."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fleet.traffic import DAY, DiurnalTraffic, TrafficConfig


def small_config(**kw):
    defaults = dict(users=500_000, period=7200.0)
    defaults.update(kw)
    return TrafficConfig(**defaults)


class TestTrafficConfig:
    def test_mean_rate_from_population(self):
        c = TrafficConfig(users=2_000_000, ops_per_user_day=43.2)
        assert c.mean_rate == pytest.approx(2_000_000 * 43.2 / DAY)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrafficConfig(users=0)
        with pytest.raises(ConfigError):
            TrafficConfig(amplitude=1.5)
        with pytest.raises(ConfigError):
            TrafficConfig(period=0)
        with pytest.raises(ConfigError):
            TrafficConfig(noise_sigma=-0.1)


class TestDiurnalShape:
    def test_factor_oscillates_around_one(self):
        traffic = DiurnalTraffic(small_config(), seed=1)
        t = np.linspace(0, 7200.0, 1441)
        f = traffic.diurnal_factor(t)
        assert f.min() == pytest.approx(1 - 0.6, abs=1e-3)
        assert f.max() == pytest.approx(1 + 0.6, abs=1e-3)
        assert f.mean() == pytest.approx(1.0, abs=1e-2)

    def test_valley_at_t0_peak_at_half_period(self):
        # phase=0.75 puts the sinusoid minimum at t=0.
        traffic = DiurnalTraffic(small_config(), seed=1)
        assert traffic.is_valley(0.0)
        assert not traffic.is_peak(0.0)
        assert traffic.is_peak(3600.0)
        assert not traffic.is_valley(3600.0)

    def test_valley_and_peak_exclusive(self):
        traffic = DiurnalTraffic(small_config(), seed=1)
        t = np.linspace(0, 7200.0, 721)
        both = [x for x in t if traffic.is_valley(x) and traffic.is_peak(x)]
        assert both == []

    def test_valley_intervals_cover_the_minimum(self):
        traffic = DiurnalTraffic(small_config(), seed=1)
        intervals = traffic.valley_intervals(0.0, 7200.0)
        assert intervals, "a full period must contain a valley"
        assert any(lo <= 60.0 <= hi or lo <= 7140.0 <= hi
                   for lo, hi in intervals)
        for lo, hi in intervals:
            assert lo < hi
            mid = (lo + hi) / 2
            assert traffic.is_valley(mid)


class TestBursts:
    def test_burst_raises_envelope(self):
        # Burst scales are uniform in (1, magnitude]; with several
        # bursts materialized some tick must sit well above baseline.
        config = small_config(bursts_per_period=6.0, burst_magnitude=2.0)
        traffic = DiurnalTraffic(config, seed=3)
        t = np.linspace(0, 7200.0, 7201)
        ratio = traffic.burst_factor(t)
        assert 1.0 < ratio.max() <= 2.0
        assert ratio.min() == pytest.approx(1.0)
        # Bursts are rare: the factor is 1 most of the time.
        assert (ratio == 1.0).mean() > 0.5

    def test_no_bursts_when_disabled(self):
        traffic = DiurnalTraffic(small_config(bursts_per_period=0.0), seed=3)
        t = np.linspace(0, 7200.0, 721)
        assert np.all(traffic.burst_factor(t) == 1.0)

    def test_envelope_composes_diurnal_and_burst(self):
        config = small_config()
        traffic = DiurnalTraffic(config, seed=5)
        t = np.linspace(0, 7200.0, 721)
        expected = (config.mean_rate * traffic.diurnal_factor(t)
                    * traffic.burst_factor(t))
        assert np.allclose(traffic.envelope(t), expected)


class TestArrivals:
    def test_counts_are_nonnegative_integers(self):
        traffic = DiurnalTraffic(small_config(), seed=11)
        counts = traffic.arrivals(0.0, 600.0, dt=1.0)
        assert counts.dtype == np.int64
        assert counts.shape == (600,)
        assert (counts >= 0).all()

    def test_open_loop_mean_matches_closed_form(self):
        # Poisson(envelope x unit-mean noise) over a full period: the
        # realized total must sit within a few sigma of the closed-form
        # integral of the envelope.
        traffic = DiurnalTraffic(small_config(noise_sigma=0.05), seed=13)
        counts = traffic.arrivals(0.0, 7200.0, dt=1.0)
        expected = traffic.expected_arrivals(0.0, 7200.0, dt=1.0)
        sigma = np.sqrt(expected)
        assert abs(counts.sum() - expected) < 6 * sigma

    def test_expected_arrivals_tracks_diurnal_shape(self):
        traffic = DiurnalTraffic(small_config(bursts_per_period=0.0), seed=13)
        valley = traffic.expected_arrivals(0.0, 600.0, dt=1.0)
        peak = traffic.expected_arrivals(3300.0, 3900.0, dt=1.0)
        assert peak > 2 * valley

    def test_deterministic_across_instances(self):
        # Same seed => same counts; different seed => different counts.
        a = DiurnalTraffic(small_config(), seed=17).arrivals(0.0, 600.0, 1.0)
        b = DiurnalTraffic(small_config(), seed=17).arrivals(0.0, 600.0, 1.0)
        assert (a == b).all()
        c = DiurnalTraffic(small_config(), seed=19).arrivals(0.0, 600.0, 1.0)
        assert (a != c).any()

    def test_prefix_window_replays(self):
        # Streams are keyed by the window start, so a shorter query over
        # the same start replays the longer one's prefix exactly.
        traffic = DiurnalTraffic(small_config(), seed=17)
        long = traffic.arrivals(0.0, 600.0, 1.0)
        short = traffic.arrivals(0.0, 300.0, 1.0)
        assert (long[:300] == short).all()

    def test_empty_window_rejected(self):
        traffic = DiurnalTraffic(small_config(), seed=17)
        with pytest.raises(ConfigError):
            traffic.arrivals(100.0, 100.0, dt=1.0)
        with pytest.raises(ConfigError):
            traffic.arrivals(0.0, 100.0, dt=0.0)
