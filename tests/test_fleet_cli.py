"""``repro-fleet`` CLI: run/report/plot and the byte-identical rerun."""

import json

import pytest

from repro.cli import fleet_main
from repro.fleet.cli import main

RUN_ARGS = [
    "run", "--gcs", "ParallelOld", "--policies", "round-robin", "monk",
    "--nodes", "6", "--duration", "1800", "--period", "1800",
    "--users", "100000", "--calibration-duration", "900", "--seed", "5",
]


@pytest.fixture(scope="module")
def study_file(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-cli")
    out = root / "study.json"
    rc = main(RUN_ARGS + ["--store", str(root / "store"),
                          "--out", str(out)])
    assert rc == 0
    return out


class TestRun:
    def test_writes_canonical_json(self, study_file):
        data = json.loads(study_file.read_text())
        assert data["v"] == 1
        assert [o["policy"] for o in data["outcomes"]] == \
            ["round-robin", "monk"]

    def test_prints_tables_and_cache_line(self, study_file, capsys, tmp_path):
        out = tmp_path / "again.json"
        store = study_file.parent / "store"
        rc = main(RUN_ARGS + ["--store", str(store), "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "calibration: 1/1 cache hits" in printed
        assert "round-robin" in printed and "monk" in printed

    def test_rerun_is_byte_identical(self, study_file, tmp_path):
        out = tmp_path / "again.json"
        store = study_file.parent / "store"
        assert main(RUN_ARGS + ["--store", str(store),
                                "--out", str(out)]) == 0
        assert out.read_bytes() == study_file.read_bytes()


class TestReportAndPlot:
    def test_report_renders_tables(self, study_file, capsys):
        assert main(["report", str(study_file)]) == 0
        out = capsys.readouterr().out
        assert "fleet study [ParallelOldGC]" in out
        assert "P99.9" in out

    def test_plot_nodes(self, study_file, capsys):
        assert main(["plot", str(study_file), "--gc", "ParallelOld",
                     "--kind", "nodes"]) == 0
        assert "fleet size over time" in capsys.readouterr().out

    def test_plot_tail(self, study_file, capsys):
        assert main(["plot", str(study_file), "--gc", "ParallelOld",
                     "--kind", "tail"]) == 0
        assert "latency tail" in capsys.readouterr().out

    def test_unknown_gc_is_config_error(self, study_file, capsys):
        assert main(["plot", str(study_file), "--gc", "CMS"]) == 2
        assert "error:" in capsys.readouterr().out


class TestEntryPoint:
    def test_fleet_main_delegates(self, study_file, capsys):
        assert fleet_main(["report", str(study_file)]) == 0
        assert "fleet study" in capsys.readouterr().out
