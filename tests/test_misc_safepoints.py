"""Tests for non-GC safepoints (paper §2: deopt, biased locks, vm ops)."""

import pytest

from repro import JVM, baseline_config
from repro.workloads.dacapo import get_benchmark


def run(misc: bool, interval: float = 0.5, seed: int = 1):
    cfg = baseline_config(seed=seed, misc_safepoints=misc,
                          misc_safepoint_interval=interval)
    jvm = JVM(cfg)
    result = jvm.run(get_benchmark("lusearch"), iterations=5, system_gc=False)
    return jvm, result


class TestMiscSafepoints:
    def test_disabled_by_default(self):
        jvm, _result = run(misc=False)
        assert not any(p.kind == "vm-op" for p in jvm.gc_log.pauses)

    def test_emitted_when_enabled(self):
        jvm, result = run(misc=True)
        vm_ops = [p for p in jvm.gc_log.pauses if p.kind == "vm-op"]
        assert vm_ops
        assert not result.crashed

    def test_causes_are_hotspot_causes(self):
        jvm, _result = run(misc=True)
        causes = {p.cause for p in jvm.gc_log.pauses if p.kind == "vm-op"}
        assert causes <= {"Deoptimize", "RevokeBias", "no vm operation"}

    def test_durations_are_small(self):
        jvm, _result = run(misc=True)
        for p in jvm.gc_log.pauses:
            if p.kind == "vm-op":
                assert p.duration < 0.01

    def test_loop_terminates(self):
        """The vm-op loop retires when the workload finishes (the
        simulation does not hang with an eternal event source)."""
        _jvm, result = run(misc=True)
        assert not result.crashed
        assert result.execution_time < 120.0

    def test_more_frequent_with_shorter_interval(self):
        _jvm_a, ra = run(misc=True, interval=2.0)
        _jvm_b, rb = run(misc=True, interval=0.2)
        count = lambda r: sum(1 for p in r.gc_log.pauses if p.kind == "vm-op")
        assert count(rb) > count(ra)

    def test_vm_ops_stop_the_world(self):
        """vm-op pauses accumulate into the total STW time like GC pauses."""
        jvm, _result = run(misc=True)
        assert jvm.world.total_stw_time == pytest.approx(jvm.gc_log.total_pause)

    def test_gc_statistics_separable(self):
        jvm, _result = run(misc=True)
        gcs_only = jvm.gc_log.of_kind("young", "full")
        assert gcs_only.count < jvm.gc_log.count
