"""Tests for the repro-serve open-loop load generator."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.seeding import rng_for
from repro.serve import ExperimentService, LoadConfig, ServiceConfig, run_load

#: Two tiny distinct jobs: the mix has cache-hit opportunities.
TEMPLATES = [
    {"benchmark": "lusearch", "gc": "Serial", "heap": "1g",
     "young": "256m", "seed": s, "iterations": 2}
    for s in (0, 1)
]


def run_with_service(tmp_path, config_kw, load_kw):
    async def main():
        svc = ExperimentService(ServiceConfig(
            store=str(tmp_path / "store"),
            socket_path=str(tmp_path / "serve.sock"), **config_kw))
        await svc.start()
        try:
            load = LoadConfig(socket_path=svc.config.socket_path, **load_kw)
            return await run_load(load), svc.stats()
        finally:
            await svc.close()

    return asyncio.run(main())


class TestLoadRun:
    def test_open_loop_mix_completes_and_hits_cache(self, tmp_path):
        report, stats = run_with_service(
            tmp_path, {"workers": 2},
            {"templates": TEMPLATES, "clients": 3, "rps": 400.0, "ops": 12,
             "seed": 0, "timeout": 60.0})
        assert report.completed == 12
        assert report.rejected == report.failed == report.errors == 0
        # 12 ops over 2 distinct cells: at most 2 simulations; the rest
        # were cache hits or coalesced onto an in-flight twin.
        assert stats["metrics"]["counters"]["jobs.simulated"] <= 2
        hits = stats["cache"]["hits"]
        coalesced = stats["metrics"]["counters"].get("jobs.coalesced", 0)
        assert hits + coalesced == 12 - stats["cache"]["misses"]
        assert report.cached == hits
        # Client-side observations are complete and aligned.
        assert len(report.op_times) == len(report.latencies_ms) == 12
        # Ops answered by a live simulation (misses + coalesced waiters)
        # each contribute one execution interval to the correlation.
        assert len(report.exec_intervals) == 12 - report.cached

    def test_band_stats_and_render(self, tmp_path):
        report, _ = run_with_service(
            tmp_path, {"workers": 2},
            {"templates": TEMPLATES, "clients": 2, "rps": 400.0, "ops": 8,
             "seed": 1, "timeout": 60.0})
        stats = report.band_stats()
        assert stats is not None
        rows = dict(stats.rows())
        assert rows["AVG(ms)"] > 0
        assert 0.0 <= report.overlap_fraction() <= 1.0
        text = report.render()
        # The CI smoke job greps for this exact line shape.
        assert f"cache hits: {report.cached}/8" in text
        assert "client latency bands" in text

    def test_rejections_counted_not_raised(self, tmp_path):
        # A drained service refuses all submissions with 503s; the load
        # generator must report them, not crash or hang.
        async def main():
            svc = ExperimentService(ServiceConfig(
                socket_path=str(tmp_path / "serve.sock"), workers=1))
            await svc.start()
            svc._draining = True
            try:
                load = LoadConfig(templates=TEMPLATES, clients=2, rps=400.0,
                                  ops=6, socket_path=svc.config.socket_path,
                                  timeout=30.0)
                return await run_load(load)
            finally:
                await svc.close()

        report = asyncio.run(main())
        assert report.rejected == 6 and report.completed == 0
        assert report.band_stats() is None
        assert "6 rejected" in report.render()


class TestDeterministicMix:
    def test_mix_choice_is_seeded(self):
        a = rng_for(7, "serve.loadgen").integers(0, 2, size=20)
        b = rng_for(7, "serve.loadgen").integers(0, 2, size=20)
        c = rng_for(8, "serve.loadgen").integers(0, 2, size=20)
        assert list(a) == list(b)
        assert list(a) != list(c)


class TestLoadConfigValidation:
    @pytest.mark.parametrize("kw", [
        {"templates": []},
        {"templates": TEMPLATES, "clients": 0},
        {"templates": TEMPLATES, "ops": 0},
        {"templates": TEMPLATES, "rps": 0.0},
    ])
    def test_bad_config_rejected(self, kw):
        with pytest.raises(ConfigError):
            LoadConfig(**kw)
