"""Tests for the concurrent collectors' cycle state machines."""

import numpy as np
import pytest

from repro.gc import ConcurrentMarkSweepGC, G1GC, create_collector
from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.machine.costs import CostModel
from repro.units import GB, MB


def make(gc, heap_mb=512, young_mb=64, **kw):
    heap = GenerationalHeap(
        HeapConfig(heap_bytes=heap_mb * MB, young_bytes=young_mb * MB),
        n_mutator_threads=4,
    )
    return create_collector(gc, heap, CostModel(), rng=np.random.default_rng(3), **kw)


def run_outcome_chain(collector, outcome, now):
    """Execute scheduled continuations immediately (test harness)."""
    pauses = list(outcome.pauses)
    conc = list(outcome.concurrent)
    t = now
    while outcome.schedule:
        schedule, outcome.schedule = outcome.schedule, []
        for delay, fn in schedule:
            t += delay
            outcome = fn(t)
            pauses.extend(outcome.pauses)
            conc.extend(outcome.concurrent)
    return pauses, conc, t


class TestCMSCycle:
    def _collector_with_pressure(self):
        c = make("CMS")
        # Old gen past the initiating occupancy (75 % of effective).
        c.heap.allocate_old(0.0, 360 * MB, pinned=True)
        c.heap.allocate(0.0, 20 * MB, None, pinned=True)
        return c

    def test_cycle_starts_above_initiating_occupancy(self):
        c = self._collector_with_pressure()
        outcome = c.allocation_failure(1.0)
        assert c.cycle_state == "marking"
        kinds = [p.kind for p in outcome.pauses]
        assert "initial-mark" in kinds
        assert outcome.schedule  # concurrent mark completion pending

    def test_no_cycle_below_occupancy(self):
        c = make("CMS")
        c.heap.allocate(0.0, 20 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert c.cycle_state == "idle"
        assert not outcome.schedule

    def test_full_cycle_reaches_idle_and_sweeps(self):
        c = self._collector_with_pressure()
        garbage = c.heap.allocate_old(0.0, 40 * MB, pinned=True)
        garbage.release()
        outcome = c.allocation_failure(1.0)
        pauses, conc, _t = run_outcome_chain(c, outcome, 1.0)
        kinds = [p.kind for p in pauses]
        assert "remark" in kinds
        assert {r.phase for r in conc} == {"concurrent-mark", "concurrent-sweep"}
        assert c.cycle_state == "idle"
        # the sweep reclaimed the released garbage in place
        assert c.heap.old.used < 420 * MB

    def test_sweep_adds_fragmentation(self):
        c = self._collector_with_pressure()
        garbage = c.heap.allocate_old(0.0, 40 * MB, pinned=True)
        garbage.release()
        run_outcome_chain(c, c.allocation_failure(1.0), 1.0)
        assert 0 < c.heap.fragmentation <= c.heap.fragmentation_cap

    def test_concurrent_mode_failure_aborts_cycle(self):
        c = make("CMS", heap_mb=100, young_mb=80)
        c.heap.allocate_old(0.0, 18 * MB, pinned=True)
        c.heap.allocate(0.0, 40 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        causes = [p.cause for p in outcome.pauses]
        assert "Concurrent Mode Failure" in causes
        assert c.cycle_state == "idle"

    def test_stale_continuation_is_noop(self):
        c = self._collector_with_pressure()
        outcome = c.allocation_failure(1.0)
        delay, fn = outcome.schedule[0]
        c.explicit_gc(2.0)  # aborts the cycle
        stale = fn(1.0 + delay)
        assert not stale.pauses and not stale.schedule

    def test_concurrent_threads_reported_during_cycle(self):
        c = self._collector_with_pressure()
        assert c.concurrent_threads_active == 0
        c.allocation_failure(1.0)
        assert c.concurrent_threads_active == c.conc_threads


class TestG1:
    def test_young_shrinks_when_pause_over_target(self):
        c = make("G1", heap_mb=2048, young_mb=1024, pause_target=0.02)
        young_before = c.heap.eden.capacity + 2 * c.heap.survivor.capacity
        c.heap.allocate(0.0, 300 * MB, None, pinned=True)
        c.allocation_failure(1.0)
        young_after = c.heap.eden.capacity + 2 * c.heap.survivor.capacity
        assert young_after < young_before

    def test_young_grows_when_pause_under_target(self):
        from repro.heap.lifetime import Exponential

        c = make("G1", heap_mb=2048, young_mb=128, pause_target=5.0)
        young_before = c.heap.eden.capacity + 2 * c.heap.survivor.capacity
        c.heap.allocate(0.0, 50 * MB, Exponential(1e-6))
        c.allocation_failure(1.0)
        young_after = c.heap.eden.capacity + 2 * c.heap.survivor.capacity
        assert young_after > young_before

    def test_young_bounded_by_fractions(self):
        c = make("G1", heap_mb=1024, young_mb=128, pause_target=100.0)
        from repro.heap.lifetime import Exponential

        for i in range(10):
            c.heap.allocate(float(i), 10 * MB, Exponential(1e-6))
            c.allocation_failure(float(i) + 0.5)
        young = c.heap.eden.capacity + 2 * c.heap.survivor.capacity
        assert young <= c.young_max_fraction * 1024 * MB + 32 * MB  # region rounding

    def test_marking_cycle_starts_at_ihop(self):
        c = make("G1", heap_mb=512, young_mb=64)
        c.heap.allocate_old(0.0, 250 * MB, pinned=True)  # > 45 % of heap
        c.heap.allocate(0.0, 20 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert c.cycle_state == "marking"
        assert "(initial-mark)" in outcome.pauses[0].cause

    def test_remark_and_cleanup_then_mixed(self):
        c = make("G1", heap_mb=512, young_mb=64)
        c.heap.allocate_old(0.0, 250 * MB, pinned=True)
        garbage = c.heap.allocate_old(0.0, 30 * MB, pinned=True)
        garbage.release()
        c.heap.allocate(0.0, 20 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        pauses = list(outcome.pauses)
        while outcome.schedule:
            delay, fn = outcome.schedule.pop(0)
            outcome = fn(1.0 + delay)
            pauses.extend(outcome.pauses)
        kinds = [p.kind for p in pauses]
        assert "remark" in kinds and "cleanup" in kinds
        assert c.mixed_remaining == c.mixed_count_target

    def test_mixed_pause_evacuates_old_garbage(self):
        c = make("G1", heap_mb=512, young_mb=64)
        c._mixed_remaining = 2
        partly_dead = c.heap.allocate_old(0.0, 40 * MB, pinned=True)
        partly_dead.release()
        c.heap.allocate(0.0, 20 * MB, None, pinned=True)
        old_before = c.heap.old.used
        outcome = c.allocation_failure(1.0)
        assert outcome.pauses[0].kind == "mixed"
        assert c.mixed_remaining == 1
        assert c.heap.old.used < old_before + 25 * MB  # garbage reclaimed

    def test_explicit_gc_resets_cycle_state(self):
        c = make("G1", heap_mb=512, young_mb=64)
        c._mixed_remaining = 3
        c._state = "marking"
        c.explicit_gc(1.0)
        assert c.cycle_state == "idle" and c.mixed_remaining == 0

    def test_g1_pause_target_flag(self):
        c = make("G1", pause_target=0.05)
        assert c.pause_target == 0.05
