"""SL102 true positive: a 2-call-hop wall-clock leak into sim/.

``tick`` never mentions ``time`` — the read is two project calls away
(``tick -> hop -> stamp -> time.time``), invisible to per-file SL001.
"""

from ..util.indirect import hop


def tick(state):
    return state + hop()
