"""SL102 near-miss: the injected-clock pattern stays CLEAN.

``self._clock`` is bound to a constructor *parameter* — there is no
static binding to a wall-clock source, so calling it taints nothing.
This is the sanctioned dependency-injection idiom the rule must not
flag.
"""


class Engine:
    def __init__(self, clock):
        self._clock = clock

    def tick(self, state):
        return state + self._clock()
