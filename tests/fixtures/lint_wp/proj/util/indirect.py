"""One more hop between the clock read and the core (SL102 fixtures)."""

from .clockutil import stamp


def hop():
    return stamp() + 1.0
