"""Wall-clock helper: the taint *source* for the SL102 fixtures.

``stamp`` never spells ``time.time()`` directly — it calls through the
module-level alias, which is exactly the indirection per-file SL001
resolves locally and the whole-program pass must carry across modules.
"""

import time

WALL = time.time


def stamp():
    return WALL()
