"""SL101 + SL104 true positives.

* ``handler`` reaches a blocking ``open`` through a sync helper — the
  event loop stalls while the write syscall runs.
* ``nap`` blocks directly (1-hop chains are findings too).
* ``kick``/``kick_local`` spawn tasks nothing holds a reference to.
"""

import asyncio
import time


def write_log(path, data):
    with open(path, "a") as fh:
        fh.write(data)


async def handler(path, data):
    write_log(path, data)


async def nap():
    time.sleep(0.1)


async def beat():
    pass


async def kick():
    asyncio.create_task(beat())


async def kick_local():
    task = asyncio.create_task(beat())
