"""SL101 + SL104 near-misses: the sanctioned async idioms.

* ``handler`` offloads the same blocking helper through
  ``run_in_executor`` — the function crosses as a *reference*, so the
  loop never runs it.
* ``kick`` keeps the task referenced and observes its outcome.
"""

import asyncio


def write_log(path, data):
    with open(path, "a") as fh:
        fh.write(data)


async def handler(path, data):
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, write_log, path, data)


async def beat():
    pass


async def kick(tasks):
    task = asyncio.create_task(beat())
    tasks.add(task)
    task.add_done_callback(tasks.discard)
