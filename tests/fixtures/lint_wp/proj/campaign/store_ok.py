"""SL103 near-misses: the three compliant shapes.

* ``append`` mutates lexically under ``with self.locked():``;
* ``_append_locked``'s write is bare, but *every* caller holds the lock
  (the one-hop caller-holds-lock idiom);
* ``locked`` itself opens the lock file — the flock target must be
  opened to be flocked, so the rule exempts the acquisition method.
"""

import contextlib
import fcntl


class Store:
    def __init__(self, root):
        self.records_path = root / "records.jsonl"
        self.lock_path = root / "lock"

    @contextlib.contextmanager
    def locked(self):
        with open(self.lock_path, "a") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def append(self, line):
        with self.locked():
            with open(self.records_path, "a") as fh:
                fh.write(line)

    def _append_locked(self, line):
        with open(self.records_path, "a") as fh:
            fh.write(line)

    def extend(self, lines):
        with self.locked():
            for line in lines:
                self._append_locked(line)
