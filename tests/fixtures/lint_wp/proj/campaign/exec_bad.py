"""SL105 true positive: a live exception rides into a process pool.

``Job.error`` holds a ``BaseException`` — which drags its traceback and
every frame local along — and the class does nothing about it, so the
first failure becomes an opaque ``PicklingError`` inside the pool
machinery instead of a reportable result.
"""

from concurrent.futures import ProcessPoolExecutor
from typing import Optional


class Job:
    payload: str
    error: Optional[BaseException]


def run(job):
    return job


def submit_one(pool: ProcessPoolExecutor, job: Job):
    return pool.submit(run, job)
