"""SL105 near-miss: the same payload shape, made pickle-safe.

``SafeJob`` also carries an exception field, but ``__getstate__`` strips
it at the boundary — the author has taken over serialization, so the
static audit stands down.
"""

from concurrent.futures import ProcessPoolExecutor
from typing import Optional


class SafeJob:
    payload: str
    error: Optional[BaseException]

    def __getstate__(self):
        return {"payload": self.payload, "error": None}


def run(job):
    return job


def submit_one(pool: ProcessPoolExecutor, job: SafeJob):
    return pool.submit(run, job)
