"""SL103 true positive: a store-file write outside ``.locked()``.

The class *has* the lock discipline (``locked`` exists, the happy path
uses it) — ``append_unlocked`` is the one method that forgot, which is
exactly the regression shape the rule hunts.
"""

import contextlib
import fcntl


class Store:
    def __init__(self, root):
        self.records_path = root / "records.jsonl"
        self.lock_path = root / "lock"

    @contextlib.contextmanager
    def locked(self):
        with open(self.lock_path, "a") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def append_unlocked(self, line):
        with open(self.records_path, "a") as fh:
            fh.write(line)

    def clear(self):
        with self.locked():
            self.records_path.unlink()
