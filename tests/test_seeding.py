"""Tests for deterministic seed derivation (stream independence)."""

import numpy as np
import pytest

from repro.seeding import derive_seed, rng_for


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "xalan", "G1GC") == derive_seed(1, "xalan", "G1GC")

    def test_sensitive_to_every_part(self):
        base = derive_seed(1, "xalan", "G1GC")
        assert derive_seed(2, "xalan", "G1GC") != base
        assert derive_seed(1, "pmd", "G1GC") != base
        assert derive_seed(1, "xalan", "SerialGC") != base

    def test_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_in_63_bit_range(self):
        for parts in ((0,), (1, 2, 3), ("x",) * 5):
            s = derive_seed(*parts)
            assert 0 <= s < 2 ** 63

    def test_mixed_types(self):
        assert isinstance(derive_seed(7, "str", 3), int)


class TestStreamIndependence:
    def test_first_draws_well_dispersed_across_seeds(self):
        """The regression that motivated this module: nearby integer seeds
        sharing trailing salt values must still produce ~N(0,1)-dispersed
        first draws (list-seeded default_rng did not)."""
        draws = np.array([
            rng_for(seed, "xalan", "ParallelOldGC").normal() for seed in range(40)
        ])
        assert 0.7 < draws.std(ddof=1) < 1.4
        assert abs(draws.mean()) < 0.5

    def test_streams_differ_between_salts(self):
        a = rng_for(1, "a").normal(size=8)
        b = rng_for(1, "b").normal(size=8)
        assert not np.allclose(a, b)

    def test_same_parts_same_stream(self):
        a = rng_for(3, "x", "y").normal(size=8)
        b = rng_for(3, "x", "y").normal(size=8)
        np.testing.assert_array_equal(a, b)
