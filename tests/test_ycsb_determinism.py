"""YCSB determinism: key streams and latency synthesis are pure
functions of ``seeding.rng_for`` coordinates — including across process
boundaries (the campaign/fleet caching story depends on it)."""

import hashlib
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seeding import rng_for
from repro.ycsb.keys import UniformKeyChooser, ZipfianKeyChooser


def key_digest(seed, n_records, theta, size):
    keys = ZipfianKeyChooser(n_records, theta=theta).choose(
        rng_for(seed, "ycsb.keystream"), size)
    return hashlib.sha256(np.ascontiguousarray(keys).tobytes()).hexdigest()


class TestKeyStreamProperties:
    @given(seed=st.integers(0, 2**32), n_records=st.integers(10, 100_000),
           theta=st.floats(0.3, 0.99), size=st.integers(1, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_same_coordinates_same_stream(self, seed, n_records, theta, size):
        a = ZipfianKeyChooser(n_records, theta=theta).choose(
            rng_for(seed, "ycsb.keystream"), size)
        b = ZipfianKeyChooser(n_records, theta=theta).choose(
            rng_for(seed, "ycsb.keystream"), size)
        assert (a == b).all()
        assert (0 <= a).all() and (a < n_records).all()

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_salt_separates_streams(self, seed):
        chooser = ZipfianKeyChooser(100_000)
        a = chooser.choose(rng_for(seed, "ycsb.keystream"), 500)
        b = chooser.choose(rng_for(seed, "other.purpose"), 500)
        assert (a != b).any()

    @given(seed=st.integers(0, 2**32), size=st.integers(1, 1_000))
    @settings(max_examples=20, deadline=None)
    def test_uniform_chooser_deterministic(self, seed, size):
        chooser = UniformKeyChooser(5_000)
        a = chooser.choose(rng_for(seed, "u"), size)
        b = chooser.choose(rng_for(seed, "u"), size)
        assert (a == b).all()


#: Code run in a fresh interpreter: must print the exact digests the
#: parent process computes. Uses a real (small) client run so the whole
#: synthesis pipeline — not just the key chooser — is covered.
_CHILD = """
import hashlib, sys
import numpy as np
sys.path.insert(0, {src!r})
from repro.seeding import rng_for
from repro.ycsb.keys import ZipfianKeyChooser

keys = ZipfianKeyChooser({n_records}, theta={theta}).choose(
    rng_for({seed}, "ycsb.keystream"), {size})
print(hashlib.sha256(np.ascontiguousarray(keys).tobytes()).hexdigest())

from repro.cassandra import default_config
from repro.jvm import JVMConfig
from repro.units import GB
from repro.ycsb import WORKLOAD_A_LIKE, YCSBClient

cfg = JVMConfig(gc="ParallelOld", heap=8 * GB, young=2 * GB, seed={seed})
trace = YCSBClient(WORKLOAD_A_LIKE, seed={seed}).run(
    cfg, default_config(8 * GB), duration=300.0)
h = hashlib.sha256()
h.update(np.ascontiguousarray(trace.op_times).tobytes())
h.update(np.ascontiguousarray(trace.latencies_ms).tobytes())
h.update(np.ascontiguousarray(trace.kinds).tobytes())
print(h.hexdigest())
"""


class TestCrossProcess:
    def test_child_process_reproduces_digests(self, tmp_path):
        import repro

        src = repro.__file__.rsplit("/repro/", 1)[0]
        params = dict(src=src, seed=77, n_records=200_000, theta=0.99,
                      size=20_000)

        # Parent-side digests.
        key_hex = key_digest(77, 200_000, 0.99, 20_000)
        from repro.cassandra import default_config
        from repro.jvm import JVMConfig
        from repro.units import GB
        from repro.ycsb import WORKLOAD_A_LIKE, YCSBClient

        cfg = JVMConfig(gc="ParallelOld", heap=8 * GB, young=2 * GB, seed=77)
        trace = YCSBClient(WORKLOAD_A_LIKE, seed=77).run(
            cfg, default_config(8 * GB), duration=300.0)
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(trace.op_times).tobytes())
        h.update(np.ascontiguousarray(trace.latencies_ms).tobytes())
        h.update(np.ascontiguousarray(trace.kinds).tobytes())
        lat_hex = h.hexdigest()

        proc = subprocess.run(
            [sys.executable, "-c", _CHILD.format(**params)],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        child_key_hex, child_lat_hex = proc.stdout.split()
        assert child_key_hex == key_hex
        assert child_lat_hex == lat_hex

    def test_in_process_repeat_matches(self):
        assert (key_digest(5, 50_000, 0.9, 5_000)
                == key_digest(5, 50_000, 0.9, 5_000))
        assert (key_digest(5, 50_000, 0.9, 5_000)
                != key_digest(6, 50_000, 0.9, 5_000))
