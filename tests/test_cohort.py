"""Tests for analytic cohorts, including batch-collection equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.heap.cohort import Cohort
from repro.heap.heap import batch_collect, batch_live_bytes
from repro.heap.lifetime import Exponential, Immortal, Weibull
from repro.units import MB


class TestCohortBasics:
    def test_resident_starts_at_allocated(self):
        c = Cohort(0.0, 1.0, 100.0, Exponential(1.0))
        assert c.resident == 100.0

    def test_live_bytes_bounded_by_resident(self):
        c = Cohort(0.0, 1.0, 100.0, Exponential(1.0))
        assert 0 <= c.live_bytes(5.0) <= c.resident

    def test_live_bytes_monotone_decreasing(self):
        c = Cohort(0.0, 1.0, 100.0, Exponential(1.0))
        assert c.live_bytes(10.0) <= c.live_bytes(2.0)

    def test_collect_frees_dead_and_ages(self):
        c = Cohort(0.0, 1.0, 100.0, Exponential(0.5))
        freed = c.collect(5.0)
        assert freed > 0
        assert c.age == 1
        assert c.resident == pytest.approx(100.0 - freed)

    def test_collect_conserves_bytes(self):
        c = Cohort(0.0, 1.0, 100.0, Exponential(1.0))
        freed1 = c.collect(2.0)
        freed2 = c.collect(4.0)
        assert freed1 + freed2 + c.resident == pytest.approx(100.0)

    def test_tail_cutoff_rounds_small_residue_to_zero(self):
        c = Cohort(0.0, 0.0, 100.0, Exponential(0.01))
        c.collect(100.0)  # survival ~ e^-10000
        assert c.resident == 0.0
        assert c.is_dead

    def test_unique_ids(self):
        a = Cohort(0, 0, 1, Immortal())
        b = Cohort(0, 0, 1, Immortal())
        assert a.cid != b.cid

    def test_mean_object_size(self):
        c = Cohort(0, 0, 100.0, Immortal(), n_objects=4)
        assert c.mean_object_size() == 25.0


class TestPinnedCohorts:
    def test_pinned_fully_live_until_release(self):
        c = Cohort(0.0, 0.0, 50 * MB, pinned=True)
        assert c.live_bytes(1e6) == 50 * MB
        c.collect(1e6)
        assert c.resident == 50 * MB

    def test_release_makes_garbage(self):
        c = Cohort(0.0, 0.0, 50 * MB, pinned=True)
        freed = c.release()
        assert freed == 50 * MB
        assert c.live_bytes(1.0) == 0.0
        assert c.is_dead

    def test_release_idempotent(self):
        c = Cohort(0.0, 0.0, 10.0, pinned=True)
        c.release()
        assert c.release() == 0.0

    def test_space_reclaimed_only_at_collection(self):
        c = Cohort(0.0, 0.0, 10.0, pinned=True)
        c.release()
        assert c.resident == 10.0  # still occupying space
        freed = c.collect(1.0)
        assert freed == 10.0 and c.resident == 0.0

    def test_release_non_pinned_rejected(self):
        c = Cohort(0.0, 0.0, 10.0, Exponential(1.0))
        with pytest.raises(ConfigError):
            c.release()

    def test_pinned_without_dist_allowed(self):
        assert Cohort(0.0, 0.0, 10.0, pinned=True).pinned


class TestValidation:
    def test_reversed_window_rejected(self):
        with pytest.raises(ConfigError):
            Cohort(5.0, 1.0, 10.0, Exponential(1.0))

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            Cohort(0.0, 1.0, -10.0, Exponential(1.0))

    def test_plain_cohort_needs_distribution(self):
        with pytest.raises(ConfigError):
            Cohort(0.0, 1.0, 10.0)


class TestBatchEquivalence:
    def _make_cohorts(self):
        dists = [Exponential(0.5), Weibull(0.6, 2.0), Exponential(0.5)]
        cohorts = []
        for i, dist in enumerate(dists):
            for j in range(5):
                cohorts.append(Cohort(j * 0.5, j * 0.5 + 0.3, 100.0 * (i + 1), dist))
        cohorts.append(Cohort(0.0, 0.0, 42.0, pinned=True))
        released = Cohort(0.0, 0.0, 7.0, pinned=True)
        released.release()
        cohorts.append(released)
        return cohorts

    def test_batch_live_bytes_matches_scalar(self):
        cohorts = self._make_cohorts()
        batch = batch_live_bytes(cohorts, 10.0)
        scalar = np.array([c.live_bytes(10.0) for c in cohorts])
        np.testing.assert_allclose(batch, scalar, rtol=1e-10)

    def test_batch_collect_matches_scalar_collect(self):
        import copy

        cohorts_a = self._make_cohorts()
        # Rebuild an identical set (fresh ids, same parameters).
        cohorts_b = self._make_cohorts()
        freed_a, surv_a = batch_collect(cohorts_a, 10.0)
        freed_b = sum(c.collect(10.0) for c in cohorts_b)
        surv_b = [c for c in cohorts_b if not c.is_dead]
        assert freed_a == pytest.approx(freed_b, rel=1e-10)
        assert len(surv_a) == len(surv_b)
        for x, y in zip(surv_a, surv_b):
            assert x.resident == pytest.approx(y.resident, rel=1e-10)
            assert x.age == y.age

    def test_batch_collect_empty(self):
        freed, survivors = batch_collect([], 1.0)
        assert freed == 0.0 and survivors == []

    @given(
        n=st.integers(1, 20),
        tau=st.floats(0.05, 10.0),
        now=st.floats(1.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_collect_conserves_bytes(self, n, tau, now):
        dist = Exponential(tau)
        cohorts = [Cohort(0.0, 0.5, 10.0 + i, dist) for i in range(n)]
        total_before = sum(c.resident for c in cohorts)
        freed, survivors = batch_collect(cohorts, now)
        total_after = sum(c.resident for c in survivors)
        assert freed + total_after == pytest.approx(total_before, rel=1e-9)
