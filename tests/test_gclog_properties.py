"""Property-based round-trip tests for the HotSpot-style GC log."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.stats import GCLog, PauseRecord
from repro.jvm.gclog import format_gc_log, parse_gc_log
from repro.units import GB, MB

kinds = st.sampled_from(["young", "full", "remark", "initial-mark", "mixed", "vm-op"])
causes = st.sampled_from([
    "Allocation Failure", "System.gc()", "Promotion Failure",
    "Concurrent Mode Failure", "CMS Final Remark", "G1 Remark",
    "To-space Exhausted (initial-mark)", "Deoptimize", "HTM Flip",
])
collectors = st.sampled_from([
    "SerialGC", "ParNewGC", "ParallelGC", "ParallelOldGC",
    "ConcMarkSweepGC", "G1GC", "HTMGC",
])


@st.composite
def pause_records(draw):
    start = draw(st.floats(0.0, 10_000.0))
    return PauseRecord(
        start=round(start, 3),
        duration=round(draw(st.floats(0.0001, 300.0)), 4),
        kind=draw(kinds),
        cause=draw(causes),
        collector=draw(collectors),
        heap_used_before=draw(st.floats(0, 64 * GB)),
        heap_used_after=draw(st.floats(0, 64 * GB)),
    )


class TestRoundTripProperties:
    @given(records=st.lists(pause_records(), max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_format_parse_round_trip(self, records):
        log = GCLog()
        for r in sorted(records, key=lambda r: r.start):
            log.record(r)
        text = format_gc_log(log, 64 * GB)
        back = parse_gc_log(text)
        assert back.count == log.count
        assert back.full_count == log.full_count
        for orig, parsed in zip(log.pauses, back.pauses):
            assert parsed.start == pytest.approx(orig.start, abs=1e-3)
            assert parsed.duration == pytest.approx(orig.duration, abs=1e-4)
            assert parsed.kind == orig.kind
            assert parsed.cause == orig.cause
            assert parsed.collector == orig.collector
            # heap sizes round-trip at MB resolution
            assert parsed.heap_used_before == pytest.approx(
                orig.heap_used_before, abs=0.5 * MB
            )

    @given(records=st.lists(pause_records(), min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_aggregates_survive_round_trip(self, records):
        log = GCLog()
        for r in sorted(records, key=lambda r: r.start):
            log.record(r)
        back = parse_gc_log(format_gc_log(log, 64 * GB))
        assert back.total_pause == pytest.approx(log.total_pause, rel=1e-3)
        assert back.max_pause == pytest.approx(log.max_pause, rel=1e-3)
        np.testing.assert_allclose(back.starts(), log.starts(), atol=1e-3)
