"""Integration tests: the paper's headline findings hold in the simulator.

These run the real experiment pipelines at full or moderately reduced
scale (a few seconds of wall time each); the benchmarks regenerate the
full tables and figures.
"""

import numpy as np
import pytest

from repro import GB, JVM, JVMConfig, MB, baseline_config
from repro.analysis.latency import gc_overlap_fraction
from repro.cassandra import CassandraServer, stress_config
from repro.workloads.dacapo import get_benchmark
from repro.ycsb import WORKLOAD_A_LIKE, YCSBClient
from repro.cassandra import default_config


SEEDS = (1, 2, 3, 4, 5)


def run_xalan(gc, system_gc, seed=1):
    jvm = JVM(baseline_config(gc=gc, seed=seed))
    return jvm.run(get_benchmark("xalan"), iterations=10, system_gc=system_gc)


def median_xalan(gc, system_gc):
    """Median execution / final-iteration times over the seed set.

    The paper compares one run per GC; we use a seed median so the
    assertions are robust to the calibrated run-to-run noise."""
    runs = [run_xalan(gc, system_gc, seed) for seed in SEEDS]
    return (
        float(np.median([r.execution_time for r in runs])),
        float(np.median([r.final_iteration_time for r in runs])),
    )


class TestDaCapoFindings:
    """§3.3: Figure 1/2 shapes on xalan."""

    @pytest.fixture(scope="class")
    def xalan_sysgc(self):
        return {gc: median_xalan(gc, True) for gc in
                ("SerialGC", "ParallelGC", "ParallelOldGC", "G1GC")}

    def test_g1_worst_with_forced_full_gcs(self, xalan_sysgc):
        g1 = xalan_sysgc["G1GC"][0]
        others = [t for gc, (t, _f) in xalan_sysgc.items() if gc != "G1GC"]
        assert g1 > max(others)
        # "...which can be 25% longer than for all the other GCs"
        assert g1 > 1.15 * np.mean(others)

    def test_parallel_old_best_with_system_gc(self, xalan_sysgc):
        po = xalan_sysgc["ParallelOldGC"][0]
        assert po == min(t for t, _f in xalan_sysgc.values())

    def test_g1_worst_final_iteration(self, xalan_sysgc):
        finals = {gc: f for gc, (_t, f) in xalan_sysgc.items()}
        assert max(finals, key=finals.get) == "G1GC"

    def test_parallel_second_worst_final_iteration(self, xalan_sysgc):
        """Figure 2(a): G1 worst, ParallelGC second worst (serial full GCs)."""
        finals = {gc: f for gc, (_t, f) in xalan_sysgc.items()}
        ranked = sorted(finals, key=finals.get)
        assert ranked[-1] == "G1GC"
        assert ranked[-2] == "ParallelGC"

    def test_serial_worst_without_system_gc(self):
        """Figure 1(b): 'the worst performance is given by the SerialGC'."""
        results = {gc: median_xalan(gc, False)[0] for gc in
                   ("SerialGC", "ParNewGC", "ParallelOldGC", "ConcMarkSweepGC")}
        worst = max(results, key=results.get)
        assert worst == "SerialGC"

    def test_every_iteration_has_a_system_gc_pause(self):
        log = run_xalan("ParallelOldGC", True).gc_log
        assert sum(1 for p in log.pauses if p.cause == "System.gc()") == 9


class TestYoungGenAnomaly:
    """§3.3 / Table 3: CMS & ParNew anomalous, ParallelOld 'as expected'."""

    def _avg_pause(self, gc, young):
        jvm = JVM(JVMConfig(gc=gc, heap=64 * GB, young=young, seed=2))
        res = jvm.run(get_benchmark("h2"), iterations=10, system_gc=False)
        return res.gc_log.avg_pause

    @pytest.mark.parametrize("gc", ["ConcMarkSweepGC", "ParNewGC"])
    def test_cms_family_smaller_young_longer_avg_pause(self, gc):
        assert self._avg_pause(gc, 6 * GB) > self._avg_pause(gc, 24 * GB)

    def test_parallel_old_behaves_as_expected(self):
        # Expected (Blackburn et al.): avg pause decreases with decreasing
        # young generation size.
        assert self._avg_pause("ParallelOldGC", 6 * GB) < self._avg_pause(
            "ParallelOldGC", 24 * GB
        )


class TestSmallHeapThrashing:
    """Table 3 lower rows: hundreds of pauses, >50 % of time in GC."""

    def test_250mb_heap_dominated_by_gc(self):
        jvm = JVM(JVMConfig(gc="CMS", heap=250 * MB, young=200 * MB, seed=2))
        res = jvm.run(get_benchmark("h2"), iterations=10, system_gc=False)
        assert not res.crashed
        assert res.gc_log.count > 100
        assert res.gc_log.full_count > 50
        assert res.gc_log.total_pause / res.execution_time > 0.5


class TestCassandraFindings:
    """§4.1: ParallelOld unacceptable, CMS/G1 seconds-long pauses."""

    @pytest.fixture(scope="class")
    def stress_runs(self):
        out = {}
        for gc in ("ParallelOld", "CMS", "G1"):
            jvm = JVM(JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=3))
            server = CassandraServer(stress_config(64 * GB, preload_records=8_000_000))
            out[gc] = jvm.run(server, duration=7200.0, ops_per_second=1350.0)
        return out

    def test_parallel_old_minutes_long_full_gc(self, stress_runs):
        fulls = [p for p in stress_runs["ParallelOld"].gc_log.pauses if p.is_full]
        assert fulls, "ParallelOld should hit a full GC on the stress test"
        assert max(p.duration for p in fulls) > 120.0  # "around 4 minutes"

    def test_cms_and_g1_no_full_gc(self, stress_runs):
        assert stress_runs["CMS"].gc_log.full_count == 0
        assert stress_runs["G1"].gc_log.full_count == 0

    def test_cms_g1_pauses_seconds_not_minutes(self, stress_runs):
        for gc in ("CMS", "G1"):
            longest = stress_runs[gc].gc_log.max_pause
            assert 1.0 < longest < 15.0, gc

    def test_parallel_old_young_pauses_tens_of_seconds(self, stress_runs):
        young = [p.duration for p in stress_runs["ParallelOld"].gc_log.pauses
                 if not p.is_full]
        assert max(young) > 10.0


class TestClientFindings:
    """§4.2: latency peaks are GC-caused; PO > CMS > G1 average latency."""

    @pytest.fixture(scope="class")
    def client_runs(self):
        out = {}
        for gc in ("ParallelOld", "CMS", "G1"):
            client = YCSBClient(WORKLOAD_A_LIKE, seed=7)
            out[gc] = client.run(
                JVMConfig(gc=gc, heap=64 * GB, young=12 * GB, seed=7),
                default_config(64 * GB),
                duration=3600.0,
            )
        return out

    def test_high_latencies_are_gc_caused(self, client_runs):
        for gc, cr in client_runs.items():
            frac = gc_overlap_fraction(cr.op_times, cr.latencies_ms,
                                       cr.pause_intervals, threshold_factor=4.0)
            assert frac > 0.95, gc

    def test_average_latency_ordering(self, client_runs):
        avg = {gc: cr.reads.latencies_ms.mean() for gc, cr in client_runs.items()}
        assert avg["ParallelOld"] > avg["CMS"] > avg["G1"]

    def test_update_band_constant(self, client_runs):
        """The bulk of update latencies sits on a tight constant line."""
        u = client_runs["G1"].updates.latencies_ms
        bulk = u[u < np.percentile(u, 95)]
        assert bulk.std() / bulk.mean() < 0.5

    def test_min_latencies_sub_millisecond_scale(self, client_runs):
        for cr in client_runs.values():
            assert cr.latencies_ms.min() < 1.5
