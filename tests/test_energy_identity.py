"""The homogeneous byte-identity guarantee of the asymmetric machinery.

`paper-48core-1class` is PAPER_SERVER re-expressed as a single-class
:class:`AsymmetricTopology`; the asymmetric code paths must degenerate
*exactly* — every collector x workload cell produces byte-identical GC
logs, execution times and traces. Likewise a placement policy on a
homogeneous machine resolves to scale 1.0 everywhere and must not
perturb a single simulated byte. The CI ``energy-smoke`` job proves the
same property end-to-end with ``cmp`` on ``repro-dacapo --gc-log``
output.
"""

import json

import pytest

from repro.energy.placement import PLACEMENT_NAMES
from repro.gc import ALL_GC_NAMES
from repro.jvm import JVM, JVMConfig
from repro.jvm.gclog import format_gc_log
from repro.machine.topology import PAPER_SERVER, PAPER_SERVER_1CLASS
from repro.telemetry import Tracer, write_trace
from repro.units import GB
from repro.workloads.dacapo import get_benchmark


def _run(gc, topology, placement="", tracer=None):
    config = JVMConfig(gc=gc, heap=8 * GB, seed=3, topology=topology,
                       gc_placement=placement)
    jvm = JVM(config, tracer=tracer)
    return jvm.run(get_benchmark("xalan"), iterations=2, system_gc=True)


def _fingerprint(result):
    """Everything a run observably produced, as comparable bytes."""
    return (
        result.execution_time,
        tuple(result.iteration_times),
        result.allocated_bytes,
        result.alloc_overhead_time,
        result.crashed,
        tuple(sorted(result.extras.items())),
        format_gc_log(result.gc_log, result.config.heap_bytes),
        tuple((r.start, r.duration, r.phase, r.collector)
              for r in result.gc_log.concurrent),
    )


class TestSingleClassTopologyIdentity:
    def test_one_class_preset_mirrors_paper_server(self):
        t = PAPER_SERVER_1CLASS
        assert (t.cores, t.numa_nodes, t.ram_bytes) == \
            (PAPER_SERVER.cores, PAPER_SERVER.numa_nodes,
             PAPER_SERVER.ram_bytes)
        (cls,) = t.core_class_layout()
        assert cls.count == 48 and cls.gc_bw_scale == 1.0

    @pytest.mark.parametrize("gc", ALL_GC_NAMES)
    def test_every_collector_byte_identical(self, gc):
        homogeneous = _run(gc, "paper-48core")
        one_class = _run(gc, "paper-48core-1class")
        assert _fingerprint(one_class) == _fingerprint(homogeneous)

    def test_trace_identical_modulo_topology_name(self, tmp_path):
        """Traces differ only in the meta ``topology`` label — events,
        counts and timestamps are bit-equal."""
        lines = {}
        for topo in ("paper-48core", "paper-48core-1class"):
            tracer = Tracer()
            _run("G1GC", topo, tracer=tracer)
            path = tmp_path / f"{topo}.jsonl"
            write_trace(tracer, str(path))
            rows = [json.loads(x) for x in path.read_text().splitlines()]
            for row in rows:
                if row["type"] == "meta":
                    row["meta"].pop("topology")
            lines[topo] = rows
        assert lines["paper-48core"] == lines["paper-48core-1class"]


class TestPlacementNoOpOnHomogeneous:
    @pytest.mark.parametrize("gc", ["ParallelOldGC", "ConcMarkSweepGC",
                                    "G1GC"])
    def test_gc_log_unchanged(self, gc):
        baseline = _run(gc, "paper-48core")
        for placement in PLACEMENT_NAMES:
            pinned = _run(gc, "paper-48core", placement=placement)
            assert _fingerprint(pinned) == _fingerprint(baseline), placement

    def test_noop_on_single_class_asym_too(self):
        baseline = _run("G1GC", "paper-48core-1class")
        pinned = _run("G1GC", "paper-48core-1class", placement="adaptive")
        assert _fingerprint(pinned) == _fingerprint(baseline)
