"""Tests for the command-line entry points."""

import pytest

from repro.cli import cassandra_main, dacapo_main, report_main


class TestDaCapoCLI:
    def test_basic_run(self, capsys):
        rc = dacapo_main(["lusearch", "-n", "2", "--heap", "1g", "--young", "256m"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lusearch" in out and "iteration" in out

    def test_gc_selection(self, capsys):
        rc = dacapo_main(["lusearch", "-n", "2", "--gc", "G1",
                          "--heap", "1g", "--young", "256m"])
        assert rc == 0
        assert "G1GC" in capsys.readouterr().out

    def test_crashing_benchmark_nonzero_exit(self, capsys):
        rc = dacapo_main(["eclipse", "-n", "1", "--heap", "1g"])
        assert rc == 1

    def test_no_tlab_flag(self, capsys):
        rc = dacapo_main(["lusearch", "-n", "1", "--no-tlab",
                          "--heap", "1g", "--young", "256m"])
        assert rc == 0

    def test_gc_log_round_trip(self, tmp_path, capsys):
        logfile = tmp_path / "gc.log"
        rc = dacapo_main(["lusearch", "-n", "3", "--heap", "1g",
                          "--young", "128m", "--gc-log", str(logfile)])
        assert rc == 0
        assert logfile.exists()
        rc2 = report_main([str(logfile)])
        assert rc2 == 0
        out = capsys.readouterr().out
        assert "pauses" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            dacapo_main(["not-a-benchmark"])


class TestCassandraCLI:
    def test_short_run(self, capsys):
        rc = cassandra_main(["--duration", "200", "--ops", "1500",
                             "--phase", "run", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cassandra" in out
        assert "READ latency" in out and "UPDATE latency" in out

    def test_load_phase_no_read_table(self, capsys):
        rc = cassandra_main(["--duration", "120", "--ops", "1500",
                             "--phase", "load"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "READ latency" not in out


class TestReportCLI:
    def test_empty_log(self, tmp_path, capsys):
        f = tmp_path / "empty.log"
        f.write_text("")
        assert report_main([str(f)]) == 0
        assert "no pauses" in capsys.readouterr().out


class TestSpecjbbCLI:
    def test_ramp(self, capsys):
        rc = __import__("repro.cli", fromlist=["specjbb_main"]).specjbb_main(
            ["-w", "4", "8", "-m", "5", "--heap", "2g", "--young", "512m"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "warehouses" in out and "score:" in out

    def test_htm_collector_accepted(self, capsys):
        from repro.cli import specjbb_main

        rc = specjbb_main(["-w", "4", "-m", "5", "--gc", "HTM",
                           "--heap", "2g", "--young", "512m"])
        assert rc == 0
        assert "HTMGC" in capsys.readouterr().out


class TestClusterCLI:
    def test_failure_study_runs_as_subcommand(self, capsys):
        from repro.cli import cluster_main

        rc = cluster_main(["failures", "-n", "2", "--duration", "600",
                           "--gc", "ParallelOld"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DOWN convictions" in out and "availability" in out

    def test_merge_subcommand(self, capsys, tmp_path):
        from repro.campaign import CellSpec, ResultStore, run_cell
        from repro.cli import cluster_main

        cell = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0,
                                  iterations=2)
        shard = ResultStore(str(tmp_path / "shard0"))
        shard.record_ok(cell, run_cell(cell))
        rc = cluster_main(["merge", str(tmp_path / "shard0"),
                           "--into", str(tmp_path / "merged")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "merged 1 stores: 1 records (1 ok, 0 failed)" in out
        assert len(ResultStore(str(tmp_path / "merged"))) == 1

    def test_submit_requires_connection_flags(self, capsys):
        from repro.cli import cluster_main

        rc = cluster_main(["submit", "--benchmarks", "lusearch"])
        assert rc == 2
        assert "need --socket" in capsys.readouterr().err
