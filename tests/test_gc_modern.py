"""ZGC / Shenandoah / Epsilon: the fully-concurrent collector suite.

Covers the ISSUE 9 acceptance criteria: audited-clean runs with the
concurrent-relocation phases (no STW-exclusivity false positives),
allocation-stall accounting that sums to the world's wall-time total,
byte-identical reruns, and the Distilling paper's qualitative pause
result (concurrent collectors' P99.9 orders of magnitude below
ParallelOld's).
"""

import pytest

from repro.gc import (ALL_GC_NAMES, GC_NAMES, MODERN_GC_NAMES,
                      TABLE8_GC_NAMES, GCType, ShenandoahGC, ZGC)
from repro.gc.registry import resolve_gc
from repro.jvm import JVM, JVMConfig
from repro.lint.audit import InvariantAuditor, KNOWN_PAUSE_KINDS
from repro.telemetry import Tracer
from repro.telemetry.events import ALLOC_STALL, CONCURRENT_RELOCATION
from repro.units import GB, MB
from repro.workloads.dacapo import get_benchmark


def run_jvm(gc, heap=16 * GB, bench="xalan", seed=1, iterations=3,
            system_gc=False, tracer=None, audit=False):
    jvm = JVM(JVMConfig(gc=gc, heap=heap, seed=seed), tracer=tracer)
    auditor = InvariantAuditor().attach(jvm) if audit else None
    result = jvm.run(get_benchmark(bench), iterations=iterations,
                     system_gc=system_gc)
    return result, jvm, auditor


class TestRegistry:
    def test_paper_six_unchanged(self):
        assert len(GC_NAMES) == 6
        assert "ZGC" not in GC_NAMES and "EpsilonGC" not in GC_NAMES

    def test_modern_names(self):
        assert MODERN_GC_NAMES == ["ZGC", "ShenandoahGC"]
        assert ALL_GC_NAMES == GC_NAMES + MODERN_GC_NAMES

    def test_table8_covers_modern(self):
        assert set(MODERN_GC_NAMES) <= set(TABLE8_GC_NAMES)

    def test_aliases(self):
        assert resolve_gc("z") is GCType.ZGC
        assert resolve_gc("zgc") is GCType.ZGC
        assert resolve_gc("shenandoah") is GCType.SHENANDOAH
        assert resolve_gc("epsilon") is GCType.EPSILON
        assert resolve_gc("nogc") is GCType.EPSILON

    def test_flag_parsing(self):
        assert JVMConfig.from_flags(["-XX:+UseZGC"]).gc is GCType.ZGC
        assert (JVMConfig.from_flags(["-XX:+UseShenandoahGC"]).gc
                is GCType.SHENANDOAH)
        assert (JVMConfig.from_flags(["-XX:+UseEpsilonGC"]).gc
                is GCType.EPSILON)

    def test_modern_pause_kinds_are_known(self):
        for kind in ("mark-start", "mark-end", "relocate-start",
                     "degenerated"):
            assert kind in KNOWN_PAUSE_KINDS

    def test_modern_collectors_force_fidelity(self):
        for gc in (GCType.ZGC, GCType.SHENANDOAH):
            jvm = JVM(JVMConfig(gc=gc, heap=4 * GB, seed=0))
            assert jvm.collector.remset_fidelity
            assert jvm.heap.card_fidelity
            assert jvm.heap.remset is not None

    def test_legacy_default_is_coarse(self):
        jvm = JVM(JVMConfig(gc="ParallelOld", heap=4 * GB, seed=0))
        assert not jvm.collector.remset_fidelity
        assert not jvm.heap.card_fidelity


class TestAuditedRuns:
    @pytest.mark.parametrize("gc", ["ZGC", "ShenandoahGC", "EpsilonGC"])
    def test_audit_clean_at_comfortable_heap(self, gc):
        result, _, auditor = run_jvm(gc, audit=True)
        assert not result.crashed
        auditor.assert_clean()

    def test_audit_clean_under_stall_pressure(self):
        """Stalls fire (h2 @ 1g) and the auditor stays clean: stalls are
        never recorded during STW and never flag exclusivity."""
        result, jvm, auditor = run_jvm("ZGC", heap=1 * GB, bench="h2",
                                       audit=True)
        assert not result.crashed
        assert auditor.counters["alloc_stalls"] > 0
        auditor.assert_clean()

    def test_audit_clean_under_degeneration(self):
        result, _, auditor = run_jvm("ShenandoahGC", heap=1 * GB, bench="h2",
                                     audit=True)
        assert not result.crashed
        degens = sum(1 for p in result.gc_log.pauses
                     if p.kind == "degenerated")
        assert degens > 0
        auditor.assert_clean()


class TestZGC:
    def test_tiny_pauses_vs_parallel_old(self):
        """The Distilling result: ZGC's max pause is orders of magnitude
        below ParallelOld's on the same workload."""
        z, _, _ = run_jvm("ZGC", system_gc=True)
        po, _, _ = run_jvm("ParallelOld", system_gc=True)
        assert not z.crashed and not po.crashed
        assert z.gc_log.max_pause < 0.01
        assert po.gc_log.max_pause > 10 * z.gc_log.max_pause

    def test_stall_accounting_sums_to_wall_time(self):
        """Tracer stall spans, JVM extras and World counters agree."""
        tracer = Tracer()
        result, jvm, _ = run_jvm("ZGC", heap=1 * GB, bench="h2",
                                 tracer=tracer)
        assert not result.crashed
        world = jvm.world
        assert world.stall_count > 0
        spans = [e for e in tracer.ring if e.name == ALLOC_STALL]
        assert len(spans) == world.stall_count
        assert sum(e.dur for e in spans) == pytest.approx(
            world.total_stall_time)
        assert result.extras["alloc_stall_seconds"] == pytest.approx(
            world.total_stall_time)
        assert result.extras["alloc_stall_count"] == world.stall_count

    def test_relocation_events_traced(self):
        tracer = Tracer()
        result, _, _ = run_jvm("ZGC", tracer=tracer)
        relocs = [e for e in tracer.ring if e.name == CONCURRENT_RELOCATION]
        assert relocs
        assert all(e.dur > 0 for e in relocs)
        assert all(e.args["collector"] == "ZGC" for e in relocs)
        assert len(relocs) == len([c for c in result.gc_log.concurrent
                                   if c.phase == "concurrent-relocation"])

    def test_no_stalls_in_extras_when_none_happened(self):
        result, _, _ = run_jvm("ZGC")
        assert "alloc_stall_seconds" not in result.extras

    def test_byte_identical_reruns(self):
        a, _, _ = run_jvm("ZGC", heap=2 * GB, bench="h2")
        b, _, _ = run_jvm("ZGC", heap=2 * GB, bench="h2")
        assert a.execution_time == b.execution_time
        assert a.iteration_times == b.iteration_times
        assert [(p.start, p.duration, p.kind) for p in a.gc_log.pauses] == \
               [(p.start, p.duration, p.kind) for p in b.gc_log.pauses]
        assert a.extras.get("alloc_stall_seconds") == \
               b.extras.get("alloc_stall_seconds")


class TestShenandoah:
    def test_degenerates_instead_of_stalling(self):
        result, jvm, _ = run_jvm("ShenandoahGC", heap=1 * GB, bench="h2")
        assert not result.crashed
        assert jvm.world.stall_count == 0
        assert jvm.collector.degenerated_count > 0
        assert any(p.kind == "degenerated" for p in result.gc_log.pauses)

    def test_pause_vocabulary(self):
        result, _, _ = run_jvm("ShenandoahGC", heap=1 * GB, bench="h2")
        kinds = {p.kind for p in result.gc_log.pauses}
        assert kinds <= KNOWN_PAUSE_KINDS
        assert "young" in kinds

    def test_brooks_tax_higher_than_zgc(self):
        assert ShenandoahGC.base_tax > ZGC.base_tax


class TestEpsilon:
    def test_zero_pauses(self):
        result, _, _ = run_jvm("EpsilonGC", system_gc=True)
        assert not result.crashed
        assert result.gc_log.count == 0
        assert result.gc_log.concurrent == []

    def test_is_fastest_at_same_noise_draw(self):
        """With the collector-noise stream pinned, the ideal baseline is
        never slower than a real collector on the same coordinates."""
        # Compare against ZGC's 4% always-on tax: same seed, same
        # benchmark; the run multiplier differs per collector (paper
        # methodology), so compare per-iteration *minimums* over seeds.
        eps = min(run_jvm("EpsilonGC", seed=s)[0].execution_time
                  for s in (1, 2, 3))
        zgc = min(run_jvm("ZGC", seed=s)[0].execution_time
                  for s in (1, 2, 3))
        assert eps < zgc * 1.05  # ideal ~ at or below the taxed run

    def test_crashes_when_live_exceeds_heap(self):
        result, _, _ = run_jvm("EpsilonGC", heap=256 * MB, bench="h2",
                               iterations=1)
        assert result.crashed

    def test_not_allowed_in_gc_names(self):
        assert "EpsilonGC" not in ALL_GC_NAMES
