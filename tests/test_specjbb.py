"""Tests for the SPECjbb-style throughput workload."""

import pytest

from repro import JVM, JVMConfig, baseline_config
from repro.errors import ConfigError
from repro.units import GB, KB, MB
from repro.workloads.specjbb import SPECjbbConfig, SPECjbbPoint, SPECjbbWorkload


class TestConfig:
    def test_defaults_valid(self):
        cfg = SPECjbbConfig()
        assert cfg.alloc_bytes_per_tx > 0

    def test_bad_volumes_rejected(self):
        with pytest.raises(ConfigError):
            SPECjbbConfig(alloc_bytes_per_tx=0)

    def test_bad_history_fraction_rejected(self):
        with pytest.raises(ConfigError):
            SPECjbbConfig(history_fraction=1.0)


@pytest.fixture(scope="module")
def ramp_result():
    jvm = JVM(baseline_config(gc="ParallelOld", seed=1))
    return jvm.run(SPECjbbWorkload(), measurement_seconds=15.0)


class TestRamp:
    def test_default_ramp_includes_core_counts(self, ramp_result):
        points = ramp_result.extras["points"]
        warehouses = [p.warehouses for p in points]
        assert 48 in warehouses and 96 in warehouses
        assert warehouses == sorted(warehouses)

    def test_throughput_scales_up_to_cores(self, ramp_result):
        points = {p.warehouses: p.bops for p in ramp_result.extras["points"]}
        assert points[2] > 1.5 * points[1]
        assert points[48] > points[2]

    def test_saturation_beyond_cores(self, ramp_result):
        points = {p.warehouses: p.bops for p in ramp_result.extras["points"]}
        # 2x cores is not 2x throughput (cores + GC are the bottleneck).
        assert points[96] < 1.3 * points[48]

    def test_gc_load_grows_with_warehouses(self, ramp_result):
        points = ramp_result.extras["points"]
        assert points[-1].gc_pause_seconds > points[0].gc_pause_seconds

    def test_score_is_mean_of_high_warehouse_points(self, ramp_result):
        points = {p.warehouses: p.bops for p in ramp_result.extras["points"]}
        expected = (points[48] + points[96]) / 2.0
        assert ramp_result.extras["score"] == pytest.approx(expected)

    def test_measurement_windows_respected(self, ramp_result):
        for p in ramp_result.extras["points"]:
            assert p.elapsed >= 15.0
            assert p.transactions > 0


class TestCollectorsOnJBB:
    def _score(self, gc, seed=1):
        jvm = JVM(baseline_config(gc=gc, seed=seed))
        result = jvm.run(SPECjbbWorkload(), warehouses=[48],
                         measurement_seconds=15.0)
        return result.extras["score"]

    def test_deterministic(self):
        assert self._score("G1") == self._score("G1")

    def test_parallel_old_beats_serial(self):
        # Serial young collections serialize the whole machine's GC work.
        assert self._score("ParallelOld") > self._score("Serial")

    def test_custom_warehouse_list(self):
        jvm = JVM(baseline_config(seed=2))
        result = jvm.run(SPECjbbWorkload(), warehouses=[4, 8],
                         measurement_seconds=10.0)
        assert [p.warehouses for p in result.extras["points"]] == [4, 8]
