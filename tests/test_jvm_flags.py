"""Tests for JVM configuration and HotSpot flag parsing."""

import pytest

from repro.errors import ConfigError
from repro.gc import GCType
from repro.jvm.flags import DEFAULT_YOUNG_FRACTION, JVMConfig, baseline_config
from repro.machine.topology import PAPER_SERVER
from repro.units import GB, MB


class TestJVMConfig:
    def test_defaults_are_paper_defaults(self):
        cfg = JVMConfig()
        assert cfg.gc is GCType.PARALLEL_OLD
        assert cfg.tlab.enabled

    def test_heap_accepts_strings(self):
        assert JVMConfig(heap="32g").heap_bytes == 32 * GB

    def test_young_defaults_to_fraction(self):
        cfg = JVMConfig(heap=16 * GB)
        assert cfg.young_bytes == pytest.approx(16 * GB * DEFAULT_YOUNG_FRACTION)

    def test_explicit_young(self):
        cfg = JVMConfig(heap=16 * GB, young="4g")
        assert cfg.young_bytes == 4 * GB

    def test_heap_larger_than_ram_rejected(self):
        with pytest.raises(ConfigError):
            JVMConfig(heap=128 * GB)  # paper server has 64 GB

    def test_young_larger_than_heap_rejected(self):
        with pytest.raises(ConfigError):
            JVMConfig(heap=8 * GB, young=16 * GB)

    def test_mutator_threads_default_one_per_core(self):
        assert JVMConfig().mutator_threads == PAPER_SERVER.cores

    def test_mutator_threads_override(self):
        assert JVMConfig(n_threads=4).mutator_threads == 4

    def test_with_returns_modified_copy(self):
        cfg = JVMConfig(heap=16 * GB)
        other = cfg.with_(gc="G1")
        assert other.gc is GCType.G1
        assert cfg.gc is GCType.PARALLEL_OLD

    def test_gc_accepts_aliases(self):
        assert JVMConfig(gc="cms").gc is GCType.CMS

    def test_baseline_config_matches_paper(self):
        cfg = baseline_config()
        assert cfg.heap_bytes == 16 * GB
        assert cfg.young_bytes == pytest.approx(5.6 * GB)
        assert cfg.gc is GCType.PARALLEL_OLD


class TestFlagParsing:
    def test_basic_flags(self):
        cfg = JVMConfig.from_flags(["-Xmx64g", "-Xmn12g", "-XX:+UseG1GC"])
        assert cfg.heap_bytes == 64 * GB
        assert cfg.young_bytes == 12 * GB
        assert cfg.gc is GCType.G1

    def test_every_gc_flag(self):
        flags = {
            "-XX:+UseSerialGC": GCType.SERIAL,
            "-XX:+UseParNewGC": GCType.PARNEW,
            "-XX:+UseParallelGC": GCType.PARALLEL,
            "-XX:+UseParallelOldGC": GCType.PARALLEL_OLD,
            "-XX:+UseConcMarkSweepGC": GCType.CMS,
            "-XX:+UseG1GC": GCType.G1,
        }
        for flag, expected in flags.items():
            assert JVMConfig.from_flags([flag]).gc is expected

    def test_tlab_flags(self):
        assert not JVMConfig.from_flags(["-XX:-UseTLAB"]).tlab.enabled
        cfg = JVMConfig.from_flags(["-XX:+UseTLAB", "-XX:TLABSize=256k"])
        assert cfg.tlab.enabled and cfg.tlab.size == 256 * 1024

    def test_gc_threads_flag(self):
        assert JVMConfig.from_flags(["-XX:ParallelGCThreads=8"]).gc_threads == 8

    def test_pause_target_flag(self):
        cfg = JVMConfig.from_flags(["-XX:MaxGCPauseMillis=50"])
        assert cfg.pause_target == 0.05

    def test_survivor_ratio_flag(self):
        assert JVMConfig.from_flags(["-XX:SurvivorRatio=6"]).survivor_ratio == 6

    def test_xms_xmx_must_agree(self):
        with pytest.raises(ConfigError):
            JVMConfig.from_flags(["-Xms8g", "-Xmx16g"])

    def test_xms_alone_sets_heap(self):
        assert JVMConfig.from_flags(["-Xms8g"]).heap_bytes == 8 * GB

    def test_unknown_flag_rejected(self):
        with pytest.raises(ConfigError):
            JVMConfig.from_flags(["-XX:+UseTrainGC"])

    def test_overrides_win(self):
        cfg = JVMConfig.from_flags(["-Xmx8g"], seed=7)
        assert cfg.seed == 7
