"""Tests for the machine model: topology and cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine import (AsymmetricTopology, CoreClass, CostModel,
                           MachineTopology, PAPER_CLIENT, PAPER_SERVER)
from repro.units import GB, MB


class TestTopology:
    def test_paper_server_has_48_cores(self):
        assert PAPER_SERVER.cores == 48

    def test_paper_server_numa_layout(self):
        assert PAPER_SERVER.sockets == 4
        assert PAPER_SERVER.numa_nodes == 8
        assert PAPER_SERVER.cores_per_numa_node == 6

    def test_paper_server_ram(self):
        assert PAPER_SERVER.ram_bytes == 64 * GB

    def test_paper_client(self):
        assert PAPER_CLIENT.cores == 16
        assert PAPER_CLIENT.ram_bytes == 8 * GB

    def test_nodes_spanned_packed(self):
        assert PAPER_SERVER.nodes_spanned(1) == 1
        assert PAPER_SERVER.nodes_spanned(6) == 1
        assert PAPER_SERVER.nodes_spanned(7) == 2
        assert PAPER_SERVER.nodes_spanned(48) == 8

    def test_nodes_spanned_clamps_to_machine(self):
        assert PAPER_SERVER.nodes_spanned(1000) == 8

    def test_sockets_spanned(self):
        assert PAPER_SERVER.sockets_spanned(12) == 1
        assert PAPER_SERVER.sockets_spanned(13) == 2

    def test_nodes_spanned_rejects_zero(self):
        with pytest.raises(ConfigError):
            PAPER_SERVER.nodes_spanned(0)

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigError):
            MachineTopology(sockets=0)

    def test_describe_mentions_cores(self):
        assert "48 cores" in PAPER_SERVER.describe()


class TestCountValidation:
    """Count fields must be true integers: a fractional
    ``cores_per_numa_node`` would silently corrupt every packed-placement
    ceiling division downstream, and ``sockets=True`` is a typo, not a
    1-socket box."""

    @pytest.mark.parametrize("field", ["sockets", "numa_nodes_per_socket",
                                       "cores_per_numa_node"])
    def test_float_rejected(self, field):
        with pytest.raises(ConfigError):
            MachineTopology(**{field: 2.5})

    @pytest.mark.parametrize("field", ["sockets", "numa_nodes_per_socket",
                                       "cores_per_numa_node"])
    def test_integral_float_rejected_too(self, field):
        # 6.0 == 6 but accepting it would make digests type-dependent.
        with pytest.raises(ConfigError):
            MachineTopology(**{field: 6.0})

    def test_bool_rejected(self):
        with pytest.raises(ConfigError):
            MachineTopology(sockets=True)

    def test_string_rejected(self):
        with pytest.raises(ConfigError):
            MachineTopology(cores_per_numa_node="6")

    def test_index_types_normalised(self):
        import numpy as np

        topo = MachineTopology(sockets=np.int64(2))
        assert topo.sockets == 2 and type(topo.sockets) is int

    def test_core_class_count_validated_the_same_way(self):
        with pytest.raises(ConfigError):
            CoreClass(name="P", count=2.5)
        with pytest.raises(ConfigError):
            CoreClass(name="P", count=True)


topologies = st.builds(
    MachineTopology,
    sockets=st.integers(1, 4),
    numa_nodes_per_socket=st.integers(1, 4),
    cores_per_numa_node=st.integers(1, 16),
)


@st.composite
def asym_topologies(draw):
    """A random two-class asymmetric box with counts summing to cores."""
    base = draw(topologies)
    cores = base.cores
    if cores < 2:
        classes = (CoreClass(name="P", count=cores),)
    else:
        p = draw(st.integers(1, cores - 1))
        classes = (CoreClass(name="P", count=p, gc_bw_scale=1.0),
                   CoreClass(name="E", count=cores - p, gc_bw_scale=0.6))
    return AsymmetricTopology(
        sockets=base.sockets,
        numa_nodes_per_socket=base.numa_nodes_per_socket,
        cores_per_numa_node=base.cores_per_numa_node,
        core_classes=classes,
    )


class TestNodesSpannedProperties:
    """S1: packed placement is monotone and clamped — more threads never
    occupy fewer NUMA nodes, and no thread count spans more nodes than
    the machine (or the class) has."""

    @given(topo=topologies, n=st.integers(1, 256))
    @settings(max_examples=100, deadline=None)
    def test_monotone_and_clamped(self, topo, n):
        assert 1 <= topo.nodes_spanned(n) <= topo.numa_nodes
        assert topo.nodes_spanned(n) <= topo.nodes_spanned(n + 1)
        # Clamp: beyond the core count the answer stops growing.
        assert topo.nodes_spanned(topo.cores) == \
            topo.nodes_spanned(topo.cores + 1000)

    @given(topo=topologies, n=st.integers(1, 256))
    @settings(max_examples=100, deadline=None)
    def test_matches_ceiling_division(self, topo, n):
        clamped = min(n, topo.cores)
        assert topo.nodes_spanned(n) == -(-clamped // topo.cores_per_numa_node)

    @given(topo=asym_topologies(), n=st.integers(1, 256))
    @settings(max_examples=100, deadline=None)
    def test_per_class_monotone_and_clamped(self, topo, n):
        for cls in topo.core_class_layout():
            spanned = topo.class_nodes_spanned(cls.name, n)
            assert 1 <= spanned <= topo.numa_nodes
            assert spanned <= topo.class_nodes_spanned(cls.name, n + 1)
            assert topo.class_nodes_spanned(cls.name, cls.count) == \
                topo.class_nodes_spanned(cls.name, cls.count + 1000)

    @given(topo=asym_topologies(), n=st.integers(1, 256))
    @settings(max_examples=100, deadline=None)
    def test_class_spans_at_most_one_extra_node(self, topo, n):
        """Packing from a class offset instead of core 0 can straddle at
        most one extra node boundary."""
        for cls in topo.core_class_layout():
            clamped = min(n, cls.count)
            from_zero = topo.nodes_spanned(clamped)
            spanned = topo.class_nodes_spanned(cls.name, n)
            assert from_zero <= spanned <= from_zero + 1

    def test_single_class_variant_equals_homogeneous(self):
        for n in (1, 6, 7, 47, 48, 1000):
            assert PAPER_SERVER.nodes_spanned(n) == \
                PAPER_SERVER.class_nodes_spanned("uniform", n)

    def test_class_nodes_spanned_rejects_zero(self):
        with pytest.raises(ConfigError):
            PAPER_SERVER.class_nodes_spanned("uniform", 0)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_SERVER.class_nodes_spanned("P", 4)


class TestAsymmetricTopology:
    def test_needs_at_least_one_class(self):
        with pytest.raises(ConfigError):
            AsymmetricTopology(cores_per_numa_node=4, core_classes=())

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ConfigError):
            AsymmetricTopology(
                cores_per_numa_node=4,
                core_classes=(CoreClass(name="P", count=2),
                              CoreClass(name="P", count=2)))

    def test_counts_must_sum_to_cores(self):
        with pytest.raises(ConfigError):
            AsymmetricTopology(
                cores_per_numa_node=4,
                core_classes=(CoreClass(name="P", count=3),))

    def test_class_offsets_are_contiguous(self):
        topo = AsymmetricTopology(
            cores_per_numa_node=6,
            core_classes=(CoreClass(name="P", count=2),
                          CoreClass(name="E", count=4)))
        assert topo.class_offset("P") == 0
        assert topo.class_offset("E") == 2

    def test_describe_mentions_classes(self):
        topo = AsymmetricTopology(
            cores_per_numa_node=4,
            core_classes=(CoreClass(name="P", count=4, freq_ghz=3.8),))
        assert "4xP@3.8GHz" in topo.describe()

    def test_core_class_power_validation(self):
        with pytest.raises(ConfigError):
            CoreClass(name="P", count=1, idle_w=5.0, active_w=4.0)
        with pytest.raises(ConfigError):
            CoreClass(name="P", count=1, gc_bw_scale=0.0)


class TestParallelEfficiency:
    def test_single_thread_gets_serial_bonus(self):
        costs = CostModel()
        assert costs.effective_threads(1) == costs.serial_bonus > 1.0

    def test_parallel_efficiency_sublinear(self):
        costs = CostModel()
        eff = costs.effective_threads(33)
        assert 1.0 <= eff < 33

    def test_efficiency_saturates(self):
        costs = CostModel()
        # Gidra et al.: little benefit beyond a handful of threads.
        assert costs.effective_threads(48) < costs.effective_threads(12) * 2

    def test_never_below_one(self):
        costs = CostModel()
        for n in (2, 8, 48):
            assert costs.effective_threads(n) >= 1.0

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigError):
            CostModel().effective_threads(0)

    def test_default_gc_threads_hotspot_ergonomics(self):
        costs = CostModel(topology=PAPER_SERVER)
        assert costs.default_gc_threads() == 8 + (48 - 8) * 5 // 8

    def test_default_gc_threads_small_machine(self, tiny_topology):
        costs = CostModel(topology=tiny_topology)
        assert costs.default_gc_threads() == 8

    def test_default_concurrent_threads(self):
        costs = CostModel(topology=PAPER_SERVER)
        expected = (costs.default_gc_threads() + 3) // 4
        assert costs.default_concurrent_gc_threads() == expected


class TestLocality:
    def test_locality_shrinks_with_heap(self):
        costs = CostModel(topology=PAPER_SERVER)
        assert costs.locality(64 * GB) < costs.locality(16 * GB) < costs.locality(1 * GB)

    def test_locality_at_zero_heap_is_one(self):
        assert CostModel().locality(0.0) == 1.0

    def test_locality_rejects_negative(self):
        with pytest.raises(ConfigError):
            CostModel().locality(-1.0)


class TestSTWDuration:
    def test_more_work_takes_longer(self):
        costs = CostModel()
        a = costs.stw_duration(n_threads=4, copied=100 * MB)
        b = costs.stw_duration(n_threads=4, copied=200 * MB)
        assert b > a

    def test_more_threads_is_faster(self):
        costs = CostModel()
        serial = costs.stw_duration(n_threads=2, compacted=1 * GB)
        parallel = costs.stw_duration(n_threads=16, compacted=1 * GB)
        assert parallel < serial

    def test_overhead_factor_scales(self):
        costs = CostModel()
        base = costs.stw_duration(n_threads=1, marked=1 * GB)
        assert costs.stw_duration(n_threads=1, marked=1 * GB, overhead_factor=1.5) == pytest.approx(1.5 * base)

    def test_rate_factor_slows(self):
        costs = CostModel()
        base = costs.stw_duration(n_threads=1, marked=1 * GB)
        slowed = costs.stw_duration(n_threads=1, marked=1 * GB, rate_factor=0.5)
        assert slowed == pytest.approx(2.0 * base)

    def test_fixed_cost_included(self):
        costs = CostModel()
        assert costs.stw_duration(fixed=0.010) == pytest.approx(0.010)

    def test_compaction_slower_than_marking(self):
        costs = CostModel()
        mark = costs.stw_duration(n_threads=1, marked=1 * GB)
        compact = costs.stw_duration(n_threads=1, compacted=1 * GB)
        assert compact > mark

    def test_sweep_is_cheapest(self):
        costs = CostModel()
        sweep = costs.stw_duration(n_threads=1, swept=1 * GB)
        mark = costs.stw_duration(n_threads=1, marked=1 * GB)
        assert sweep < mark


class TestPromotionDegradation:
    def test_empty_old_gen_full_bandwidth(self):
        assert CostModel().promotion_bw_factor(0.0) == 1.0

    def test_full_old_gen_hits_floor(self):
        costs = CostModel()
        assert costs.promotion_bw_factor(1.0) == pytest.approx(costs.promotion_floor)

    def test_monotone_decreasing(self):
        costs = CostModel()
        values = [costs.promotion_bw_factor(x / 10) for x in range(11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_clamps_out_of_range(self):
        costs = CostModel()
        assert costs.promotion_bw_factor(-0.5) == 1.0
        assert costs.promotion_bw_factor(2.0) == costs.promotion_bw_factor(1.0)


class TestSafepointAndAllocation:
    def test_time_to_safepoint_grows_with_threads(self):
        costs = CostModel()
        assert costs.time_to_safepoint(48) > costs.time_to_safepoint(1)

    def test_tlab_alloc_cheaper_than_shared_lock(self):
        costs = CostModel()
        tlab = costs.alloc_overhead(
            n_bytes=100 * MB, n_objects=100_000, tlab_enabled=True,
            tlab_size=512 * 1024, n_threads=48,
        )
        shared = costs.alloc_overhead(
            n_bytes=100 * MB, n_objects=100_000, tlab_enabled=False,
            tlab_size=0, n_threads=48,
        )
        assert tlab < shared

    def test_shared_alloc_contention_grows_with_threads(self):
        costs = CostModel()
        one = costs.alloc_overhead(n_bytes=1 * MB, n_objects=1000,
                                   tlab_enabled=False, tlab_size=0, n_threads=1)
        many = costs.alloc_overhead(n_bytes=1 * MB, n_objects=1000,
                                    tlab_enabled=False, tlab_size=0, n_threads=48)
        assert many > one

    def test_tlab_needs_positive_size(self):
        with pytest.raises(ConfigError):
            CostModel().alloc_overhead(
                n_bytes=1, n_objects=1, tlab_enabled=True, tlab_size=0, n_threads=1
            )

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigError):
            CostModel().alloc_overhead(
                n_bytes=-1, n_objects=1, tlab_enabled=False, tlab_size=0, n_threads=1
            )

    def test_heap_touch_time_proportional(self):
        costs = CostModel()
        assert costs.heap_touch_time(2 * GB) == pytest.approx(2 * costs.heap_touch_time(1 * GB))
