"""SL006 fixture: Collector overrides that break / keep pause accounting."""

from repro.gc.base import Collector, Outcome, STWPause


class DroppedPauseGC(Collector):
    """BAD: young collection runs but no STWPause is ever constructed —
    the GC work would vanish from the log."""

    name = "DroppedPause"

    def allocation_failure(self, now):          # SL006
        self.heap.minor_collection(now, self._tenuring)
        return Outcome()


class SilentFullGC(Collector):
    """BAD: override routes through a helper that also drops the pause."""

    name = "SilentFull"

    def explicit_gc(self, now):                 # SL006
        return self._quiet(now)

    def _quiet(self, now):
        self.heap.full_collection(now)
        return Outcome()


class HonestGC(Collector):
    """GOOD: constructs the pause itself (reached through a helper)."""

    name = "Honest"

    def allocation_failure(self, now):
        return self._do_young(now)

    def _do_young(self, now):
        pause, vol = self._minor(now, "Allocation Failure")
        return Outcome(pauses=[pause])


class DelegatingGC(HonestGC):
    """GOOD: delegates to the base mechanics, which keep accounting."""

    name = "Delegating"

    def explicit_gc(self, now):
        pause = self._full(now, "System.gc()", compacting=False)
        return Outcome(pauses=[STWPause("vm-op", "follow-up", 0.0)] + [pause])
