"""Clean fixture: idiomatic deterministic simulation code, zero findings."""

from repro.seeding import rng_for

GOOD_FLAGS = ["-XX:+UseG1GC", "-Xmx16g", "-XX:MaxGCPauseMillis=200"]


def sample_pauses(n):
    rng = rng_for("lint-clean-fixture", n)
    times = sorted(float(x) for x in rng.random(n))
    return [t for t in times if t > 0.5]
