"""Suppression fixture: every violation here carries a directive."""

import time

# simlint: disable-file=SL002 -- fixture exercises file-wide suppression
import numpy as np


def calibrate():
    t0 = time.time()  # simlint: disable=SL001 -- wall-clock calibration only
    rng = np.random.default_rng(0)  # file-wide SL002 suppression applies
    return t0, rng.random()
