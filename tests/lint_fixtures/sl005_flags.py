"""SL005 fixture: a HotSpot flag literal that does not dry-parse."""

BAD_FLAGS = [
    "-XX:+UseParallelOldGC",
    "-Xmx12g",
    "-XX:ThisFlagDoesNotExist=1",   # SL005: unknown -XX flag
]

GOOD_FLAGS = ["-XX:+UseConcMarkSweepGC", "-Xms16g", "-Xmx16g"]

NOT_FLAGS = ["--xray", "not a flag list"]  # no -X element: rule skips it
