"""SL002 fixture: ad-hoc RNG construction outside repro.seeding."""

import numpy as np
from numpy.random import default_rng


def make_generators():
    a = np.random.default_rng(0)     # SL002: literal seed
    b = np.random.default_rng()      # SL002: OS entropy
    c = default_rng(42)              # SL002: aliased literal seed
    # Seed derived from data, not a literal — allowed:
    d = np.random.default_rng(hash("part") & 0xFFFF)
    return a, b, c, d
