"""SL001 fixture: wall-clock and OS-entropy reads (each line a violation)."""

import os
import random
import time
import uuid
from datetime import datetime
from time import perf_counter as pc


def stamp():
    a = time.time()            # SL001: wall clock
    b = pc()                   # SL001: aliased perf_counter
    c = datetime.now()         # SL001: datetime
    d = os.urandom(8)          # SL001: OS entropy
    e = uuid.uuid4()           # SL001: entropy-backed uuid
    f = random.random()        # SL001: stdlib global RNG
    return a, b, c, d, e, f
