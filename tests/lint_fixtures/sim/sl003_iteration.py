"""SL003 fixture: unordered iteration (lives under a ``sim/`` dir so the
rule's path scoping applies)."""


def drain(events, ready):
    total = 0.0
    for ev in {e for e in events}:       # SL003: set comprehension
        total += ev
    for ev in set(events):               # SL003: set() result
        total += ev
    for key in ready.keys():             # SL003: dict .keys()
        total += key
    vals = [v for v in {1, 2, 3}]        # SL003: set literal in comprehension
    # sorted() makes the order explicit — allowed:
    for ev in sorted(set(events)):
        total += ev
    return total, vals
