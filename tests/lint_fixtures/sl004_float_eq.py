"""SL004 fixture: exact equality on simulated-time floats."""


def check(engine, pause_start_time, wake_at, deadline_len):
    if engine.now == pause_start_time:          # SL004
        return True
    if wake_at != engine.now:                   # SL004
        return False
    if engine.peek() == wake_at:                # SL004: peek() is a time
        return True
    # Non-numeric comparand — not a float comparison, allowed:
    if pause_start_time == "never":
        return False
    # Tolerance comparison — the sanctioned form:
    return abs(engine.now - wake_at) < 1e-9 and deadline_len > 0
