"""Tests for the six collectors: structure (paper Table 1) and pricing."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gc import (
    ConcurrentMarkSweepGC,
    G1GC,
    GCType,
    GC_NAMES,
    ParNewGC,
    ParallelGC,
    ParallelOldGC,
    SerialGC,
    create_collector,
)
from repro.gc.registry import resolve_gc
from repro.heap.heap import GenerationalHeap, HeapConfig
from repro.machine.costs import CostModel
from repro.units import GB, MB


def make_collector(gc_type, heap_mb=256, young_mb=64, topology=None, **kw):
    heap = GenerationalHeap(
        HeapConfig(heap_bytes=heap_mb * MB, young_bytes=young_mb * MB),
        n_mutator_threads=4,
    )
    costs = CostModel() if topology is None else CostModel(topology=topology)
    return create_collector(gc_type, heap, costs,
                            rng=np.random.default_rng(1), **kw)


class TestRegistry:
    def test_six_collectors(self):
        assert len(GC_NAMES) == 6

    def test_resolve_aliases(self):
        assert resolve_gc("cms") is GCType.CMS
        assert resolve_gc("ConcMarkSweepGC") is GCType.CMS
        assert resolve_gc("parallel-old") is GCType.PARALLEL_OLD
        assert resolve_gc("G1") is GCType.G1
        assert resolve_gc(GCType.SERIAL) is GCType.SERIAL

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            resolve_gc("train-gc")

    def test_factory_returns_right_classes(self):
        classes = {
            GCType.SERIAL: SerialGC,
            GCType.PARNEW: ParNewGC,
            GCType.PARALLEL: ParallelGC,
            GCType.PARALLEL_OLD: ParallelOldGC,
            GCType.CMS: ConcurrentMarkSweepGC,
            GCType.G1: G1GC,
        }
        for gc_type, cls in classes.items():
            assert isinstance(make_collector(gc_type), cls)


class TestTable1Structure:
    """The collectors' structural properties from the paper's Table 1."""

    def test_serial_is_fully_serial(self):
        assert not SerialGC.parallel_young and not SerialGC.parallel_full

    def test_parnew_parallel_young_serial_old(self):
        assert ParNewGC.parallel_young and not ParNewGC.parallel_full

    def test_parallel_scavenge_serial_full(self):
        assert ParallelGC.parallel_young and not ParallelGC.parallel_full

    def test_parallel_old_fully_parallel(self):
        assert ParallelOldGC.parallel_young and ParallelOldGC.parallel_full

    def test_cms_concurrent_old_serial_fallback(self):
        assert ConcurrentMarkSweepGC.parallel_young
        assert not ConcurrentMarkSweepGC.parallel_full

    def test_g1_serial_full_gc_jdk8(self):
        """The paper-critical structural fact: G1's full GC is serial."""
        assert G1GC.parallel_young and not G1GC.parallel_full
        assert G1GC.full_overhead_factor > 1.0

    def test_cms_family_tenures_early(self):
        assert ConcurrentMarkSweepGC.tenuring_threshold < ParallelOldGC.tenuring_threshold
        assert ParNewGC.tenuring_threshold < SerialGC.tenuring_threshold

    def test_ps_family_promotion_degrades(self):
        assert ParallelGC.promotion_degrades and ParallelOldGC.promotion_degrades
        assert not SerialGC.promotion_degrades
        assert not ConcurrentMarkSweepGC.promotion_degrades


class TestAllocationFailureCollection:
    @pytest.mark.parametrize("gc", GC_NAMES)
    def test_young_gc_empties_eden(self, gc):
        c = make_collector(gc)
        c.heap.allocate(0.0, 30 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        assert c.heap.eden.used == 0.0
        assert outcome.pauses
        assert outcome.pauses[0].kind in ("young", "mixed")
        assert outcome.pauses[0].duration > 0

    @pytest.mark.parametrize("gc", GC_NAMES)
    def test_explicit_gc_is_full(self, gc):
        c = make_collector(gc)
        c.heap.allocate(0.0, 10 * MB, None, pinned=True)
        outcome = c.explicit_gc(1.0)
        assert any(p.kind == "full" for p in outcome.pauses)
        assert c.heap.old.used == pytest.approx(10 * MB)

    def test_promotion_failure_triggers_full(self):
        c = make_collector("ParallelOld", heap_mb=100, young_mb=80)
        c.heap.allocate_old(0.0, 18 * MB, pinned=True)
        c.heap.allocate(0.0, 30 * MB, None, pinned=True)
        outcome = c.allocation_failure(1.0)
        kinds = [p.kind for p in outcome.pauses]
        assert kinds[0] == "young" and "full" in kinds


class TestPricing:
    def test_more_survivors_longer_pause(self):
        a = make_collector("ParallelOld")
        b = make_collector("ParallelOld")
        a.heap.allocate(0.0, 10 * MB, None, pinned=True)
        b.heap.allocate(0.0, 40 * MB, None, pinned=True)
        pa = a.allocation_failure(1.0).pauses[0].duration
        pb = b.allocation_failure(1.0).pauses[0].duration
        assert pb > pa

    def test_serial_young_slower_than_parallel(self):
        results = {}
        for gc in ("Serial", "ParNew"):
            c = make_collector(gc)
            c.noise = 0.0
            # 3 MB survives (fits both survivor spaces, no overflow); the
            # rest is dead by collection time.
            from repro.heap.lifetime import Exponential
            c.heap.allocate(0.0, 3 * MB, None, pinned=True)
            c.heap.allocate(0.0, 37 * MB, Exponential(1e-6))
            results[gc] = c.allocation_failure(1.0).pauses[0].duration
        assert results["Serial"] > results["ParNew"]

    def test_g1_full_slowest_full_gc(self):
        durations = {}
        for gc in ("ParallelOld", "Serial", "G1"):
            c = make_collector(gc)
            c.noise = 0.0
            c.heap.allocate(0.0, 40 * MB, None, pinned=True)
            durations[gc] = c.explicit_gc(1.0).pauses[0].duration
        # G1's serial, bookkeeping-heavy full GC is the clear loser; at
        # this small live size Serial and ParallelOld are close (parallel
        # speedup vs ParallelOld's serial summary phase).
        assert durations["G1"] > 1.4 * durations["Serial"]
        assert durations["G1"] > 1.4 * durations["ParallelOld"]

    def test_parallel_full_slower_than_serial_full(self):
        """ParallelGC's serial full GC carries extra side-table overhead."""
        durations = {}
        for gc in ("Parallel", "Serial"):
            c = make_collector(gc)
            c.noise = 0.0
            c.heap.allocate(0.0, 40 * MB, None, pinned=True)
            durations[gc] = c.explicit_gc(1.0).pauses[0].duration
        assert durations["Parallel"] > durations["Serial"]

    def test_promotion_degradation_lengthens_pause(self):
        free_run = make_collector("ParallelOld", heap_mb=512, young_mb=64)
        full_run = make_collector("ParallelOld", heap_mb=512, young_mb=64)
        free_run.noise = full_run.noise = 0.0
        full_run.heap.allocate_old(0.0, 420 * MB, pinned=True)  # occ ~0.94
        for c in (free_run, full_run):
            c.heap.allocate(0.0, 40 * MB, None, pinned=True)
        t_free = free_run.allocation_failure(1.0).pauses[0].duration
        t_full = full_run.allocation_failure(1.0).pauses[0].duration
        assert t_full > 1.5 * t_free

    def test_gc_threads_validated(self):
        with pytest.raises(ConfigError):
            make_collector("ParallelOld", gc_threads=0)

    def test_jitter_disabled_is_deterministic(self):
        c = make_collector("Serial")
        c.noise = 0.0
        assert c._jitter() == 1.0


class TestAdaptiveTenuring:
    def test_threshold_drops_under_survivor_pressure(self):
        c = make_collector("ParallelOld")
        start = c._tenuring
        # Repeatedly hit the survivor space with more than its target.
        for i in range(4):
            c.heap.allocate(float(i), 5 * MB, None, pinned=True)
            c.allocation_failure(float(i) + 0.5)
        assert c._tenuring < start

    def test_threshold_recovers_when_quiet(self):
        from repro.heap.lifetime import Exponential

        c = make_collector("ParallelOld")
        c._tenuring = 3
        for i in range(20):
            c.heap.allocate(float(i), 1 * MB, Exponential(1e-6))
            c.allocation_failure(float(i) + 0.5)
        assert c._tenuring == c.tenuring_threshold
