"""Tests for TLAB sizing and waste accounting."""

import pytest

from repro.errors import ConfigError
from repro.heap.tlab import TLABConfig, TLABManager
from repro.units import GB, KB, MB


class TestTLABConfig:
    def test_defaults_enabled_adaptive(self):
        cfg = TLABConfig()
        assert cfg.enabled and cfg.size is None

    def test_fixed_size_validated(self):
        with pytest.raises(ConfigError):
            TLABConfig(size=-1.0)

    def test_target_refills_validated(self):
        with pytest.raises(ConfigError):
            TLABConfig(target_refills=0)


class TestAdaptiveSizing:
    def test_adaptive_size_scales_with_eden(self):
        small = TLABManager(TLABConfig(), 64 * MB, 8)
        big = TLABManager(TLABConfig(), 4 * GB, 8)
        assert big.tlab_size > small.tlab_size

    def test_adaptive_size_shrinks_with_threads(self):
        few = TLABManager(TLABConfig(), 1 * GB, 2)
        many = TLABManager(TLABConfig(), 1 * GB, 48)
        assert many.tlab_size < few.tlab_size

    def test_adaptive_respects_min(self):
        mgr = TLABManager(TLABConfig(), 1 * MB, 64)
        assert mgr.tlab_size == TLABConfig().min_size

    def test_adaptive_respects_max(self):
        mgr = TLABManager(TLABConfig(), 100 * GB, 1)
        assert mgr.tlab_size == TLABConfig().max_size

    def test_fixed_size_used_verbatim(self):
        mgr = TLABManager(TLABConfig(size=256 * KB), 1 * GB, 8)
        assert mgr.tlab_size == 256 * KB

    def test_disabled_size_zero(self):
        mgr = TLABManager(TLABConfig(enabled=False), 1 * GB, 8)
        assert mgr.tlab_size == 0.0


class TestWaste:
    def test_waste_half_buffer_per_thread(self):
        mgr = TLABManager(TLABConfig(size=1 * MB), 1 * GB, 10)
        assert mgr.expected_waste == pytest.approx(5 * MB)

    def test_waste_capped_at_ten_percent_of_eden(self):
        mgr = TLABManager(TLABConfig(size=64 * MB), 100 * MB, 64)
        assert mgr.expected_waste == pytest.approx(10 * MB)

    def test_disabled_no_waste(self):
        mgr = TLABManager(TLABConfig(enabled=False), 1 * GB, 10)
        assert mgr.expected_waste == 0.0

    def test_thread_count_validated(self):
        with pytest.raises(ConfigError):
            TLABManager(TLABConfig(), 1 * GB, 0)
