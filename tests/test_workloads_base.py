"""Tests for the workload base layer: profiles and live sets."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.heap.cohort import Cohort
from repro.units import MB
from repro.workloads.base import AllocationProfile, LiveSet


class TestAllocationProfile:
    def test_fractions_must_not_exceed_one(self):
        with pytest.raises(ConfigError):
            AllocationProfile(
                alloc_bytes_per_iteration=1.0,
                short_fraction=0.8, medium_fraction=0.3, immortal_fraction=0.1,
            )

    def test_negative_volume_rejected(self):
        with pytest.raises(ConfigError):
            AllocationProfile(alloc_bytes_per_iteration=-1.0)

    def test_churn_fraction_bounded(self):
        with pytest.raises(ConfigError):
            AllocationProfile(alloc_bytes_per_iteration=1.0, live_churn_fraction=1.5)

    def test_lifetime_mixture_built(self):
        p = AllocationProfile(
            alloc_bytes_per_iteration=1.0,
            short_fraction=0.8, medium_fraction=0.15, immortal_fraction=0.05,
        )
        dist = p.lifetime()
        # long-run survival equals the immortal fraction
        assert dist.survival(1e9) == pytest.approx(0.05, abs=1e-3)

    def test_lifetime_without_medium(self):
        p = AllocationProfile(
            alloc_bytes_per_iteration=1.0,
            short_fraction=1.0, medium_fraction=0.0, immortal_fraction=0.0,
        )
        assert p.lifetime().survival(100.0) < 1e-6


class FakeCtx:
    """Minimal MutatorContext stand-in for LiveSet tests."""

    def allocate(self, n_bytes, dist, n_objects=1.0, pinned=False, label="",
                 window=0.0):
        return Cohort(0.0, 0.0, n_bytes, dist, n_objects=n_objects,
                      pinned=pinned, label=label)
        yield  # pragma: no cover


def drain(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class TestLiveSet:
    def test_allocates_in_chunks(self):
        ls = LiveSet(64 * MB, chunk_bytes=16 * MB)
        drain(ls.allocate_body(FakeCtx(), 1024.0))
        assert len(ls.chunks) == 4
        assert ls.resident_bytes == pytest.approx(64 * MB)

    def test_default_chunking(self):
        ls = LiveSet(160 * MB)
        drain(ls.allocate_body(FakeCtx(), 1024.0))
        assert len(ls.chunks) == 16

    def test_churn_replaces_fraction(self):
        ls = LiveSet(64 * MB, chunk_bytes=16 * MB)
        drain(ls.allocate_body(FakeCtx(), 1024.0))
        before = set(c.cid for c in ls.chunks)
        rng = np.random.default_rng(0)
        drain(ls.churn_body(FakeCtx(), 0.5, 1024.0, rng))
        after = set(c.cid for c in ls.chunks)
        assert len(after) == len(before)
        assert len(before - after) == 2  # half of 4 chunks replaced

    def test_churn_releases_old_chunks(self):
        ls = LiveSet(32 * MB, chunk_bytes=16 * MB)
        drain(ls.allocate_body(FakeCtx(), 1024.0))
        originals = list(ls.chunks)
        rng = np.random.default_rng(0)
        drain(ls.churn_body(FakeCtx(), 1.0, 1024.0, rng))
        assert all(c.released for c in originals)

    def test_zero_churn_noop(self):
        ls = LiveSet(32 * MB, chunk_bytes=16 * MB)
        drain(ls.allocate_body(FakeCtx(), 1024.0))
        drain(ls.churn_body(FakeCtx(), 0.0, 1024.0, np.random.default_rng(0)))
        assert not any(c.released for c in ls.chunks)

    def test_empty_live_set(self):
        ls = LiveSet(0.0)
        drain(ls.allocate_body(FakeCtx(), 1024.0))
        assert ls.chunks == [] and ls.resident_bytes == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LiveSet(-1.0)
