"""Tests for the Cassandra substrate: memtable, commit log, server."""

import pytest

from repro import JVM, JVMConfig
from repro.cassandra import (
    CassandraConfig,
    CassandraServer,
    CommitLog,
    Memtable,
    SSTableSet,
    default_config,
    stress_config,
)
from repro.errors import ConfigError
from repro.heap.cohort import Cohort
from repro.units import GB, KB, MB


def tiny_cassandra(**overrides):
    kw = dict(
        memtable_cap_bytes=32 * MB,
        commitlog_cap_bytes=8 * MB,
        commitlog_segment_bytes=2 * MB,
        memtable_chunk_bytes=4 * MB,
    )
    kw.update(overrides)
    return CassandraConfig(**kw)


def pinned_allocator(allocated):
    """Fake chunk allocator: records cohorts without a JVM (generator)."""

    def alloc(n_bytes):
        cohort = Cohort(0.0, 0.0, n_bytes, pinned=True)
        allocated.append(cohort)
        return cohort
        yield  # pragma: no cover - makes this a generator

    return alloc


def drain(gen):
    """Run a generator that never actually yields."""
    try:
        while True:
            next(gen)
    except StopIteration:
        pass


class TestConfig:
    def test_default_config_memtable_third_of_heap(self):
        cfg = default_config(60 * GB)
        assert cfg.memtable_cap_bytes == pytest.approx(20 * GB)
        assert cfg.commitlog_cap_bytes == 1 * GB

    def test_stress_config_caps_equal_heap(self):
        cfg = stress_config(64 * GB)
        assert cfg.memtable_cap_bytes == 64 * GB
        assert cfg.commitlog_cap_bytes == 64 * GB
        assert cfg.preload_records > 0

    def test_record_heap_bytes_includes_overhead(self):
        cfg = CassandraConfig(record_bytes=1 * KB, heap_overhead_factor=1.6)
        assert cfg.record_heap_bytes == pytest.approx(1.6 * KB)

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ConfigError):
            CassandraConfig(heap_overhead_factor=0.5)


class TestMemtable:
    def test_write_accumulates_pending(self):
        m = Memtable(tiny_cassandra())
        m.write(1000)
        assert m.pending_bytes == pytest.approx(1000 * m.config.record_heap_bytes)

    def test_materialize_creates_chunks(self):
        m = Memtable(tiny_cassandra())
        m.write(4000)  # 4000 * 1.6 KB = 6.25 MB -> one 4 MB chunk
        allocated = []

        def runner():
            yield from m.materialize(pinned_allocator(allocated))

        drain(runner())
        assert len(m.chunks) == 1
        assert m.pending_bytes < m.config.memtable_chunk_bytes

    def test_updates_mark_obsolete_and_release_chunks(self):
        m = Memtable(tiny_cassandra())
        allocated = []

        def fill():
            m.write(8000)
            yield from m.materialize(pinned_allocator(allocated))
            m.write(8000, update_fraction=1.0)  # supersedes everything
            yield from m.materialize(pinned_allocator(allocated))

        drain(fill())
        assert any(c.released for c in allocated)

    def test_needs_flush_past_cap(self):
        m = Memtable(tiny_cassandra(memtable_cap_bytes=1 * MB))
        m.write(1000)
        assert m.needs_flush

    def test_flush_releases_everything(self):
        m = Memtable(tiny_cassandra())
        allocated = []

        def fill():
            m.write(8000)
            yield from m.materialize(pinned_allocator(allocated))

        drain(fill())
        freed = m.flush()
        assert freed > 0
        assert m.heap_bytes == 0.0
        assert all(c.released for c in allocated)
        assert m.flush_count == 1

    def test_bad_write_args(self):
        with pytest.raises(ConfigError):
            Memtable(tiny_cassandra()).write(-1)


class TestCommitLog:
    def test_append_and_materialize_segments(self):
        log = CommitLog(tiny_cassandra())
        allocated = []

        def fill():
            log.append(5 * MB)
            yield from log.materialize(pinned_allocator(allocated))

        drain(fill())
        assert len(log.segments) == 2  # 2 x 2 MB segments, 1 MB pending
        assert log.pending_bytes == pytest.approx(1 * MB)

    def test_recycles_past_cap(self):
        log = CommitLog(tiny_cassandra(commitlog_cap_bytes=4 * MB))
        allocated = []

        def fill():
            log.append(10 * MB)
            yield from log.materialize(pinned_allocator(allocated))

        drain(fill())
        assert log.recycled_segments > 0
        assert log.heap_bytes <= 4 * MB + 2 * MB  # cap + one pending segment

    def test_replay_bytes(self):
        log = CommitLog(tiny_cassandra())
        log.append(3 * MB)
        assert log.replay_bytes() == pytest.approx(3 * MB)


class TestSSTables:
    def test_add_and_totals(self):
        s = SSTableSet()
        s.add(10.0, 100 * MB, 1000)
        s.add(20.0, 50 * MB, 500)
        assert s.count == 2
        assert s.total_bytes == pytest.approx(150 * MB)

    def test_read_amplification_grows(self):
        s = SSTableSet()
        base = s.read_amplification()
        for i in range(8):
            s.add(float(i), 1 * MB, 10)
        assert s.read_amplification() > base


class TestServerRuns:
    def _run(self, tiny_topology, gc="ParallelOld", **drive_kw):
        cfg = JVMConfig(gc=gc, heap=2 * GB, young=512 * MB,
                        topology=tiny_topology, seed=9)
        server = CassandraServer(tiny_cassandra(
            memtable_cap_bytes=1.5 * GB, commitlog_cap_bytes=256 * MB,
            transient_bytes_per_op=64 * KB,
        ))
        jvm = JVM(cfg)
        drive_kw.setdefault("duration", 120.0)
        drive_kw.setdefault("ops_per_second", 2000.0)
        result = jvm.run(server, **drive_kw)
        return jvm, server, result

    def test_load_phase_accumulates_memtable(self, tiny_topology):
        _jvm, server, result = self._run(tiny_topology)
        assert not result.crashed
        stats = result.extras["server_stats"]
        assert stats.inserts > 0
        assert stats.memtable_bytes_end > 0

    def test_serving_takes_roughly_duration(self, tiny_topology):
        _jvm, _server, result = self._run(tiny_topology, duration=60.0)
        assert 60.0 <= result.execution_time < 90.0

    def test_gc_happens_under_load(self, tiny_topology):
        jvm, _server, result = self._run(tiny_topology)
        assert jvm.gc_log.count >= 1

    def test_mixed_workload_counts_reads(self, tiny_topology):
        _jvm, _server, result = self._run(
            tiny_topology, read_fraction=0.5, update_fraction=0.5
        )
        stats = result.extras["server_stats"]
        assert stats.reads > 0 and stats.updates > 0
        assert stats.inserts == pytest.approx(0.0)

    def test_invalid_mix_rejected(self, tiny_topology):
        _jvm, _server, result = self._run(
            tiny_topology, read_fraction=0.8, update_fraction=0.4
        )
        assert result.crashed
        assert "ConfigError" in result.crash_reason

    def test_replay_happens_with_preload(self, tiny_topology):
        cfg = JVMConfig(gc="CMS", heap=2 * GB, young=256 * MB,
                        topology=tiny_topology, seed=9)
        server = CassandraServer(stress_config(2 * GB, preload_records=200_000,
                                               transient_bytes_per_op=64 * KB))
        result = JVM(cfg).run(server, duration=60.0, ops_per_second=1000.0)
        stats = result.extras["server_stats"]
        assert stats.replayed_bytes == pytest.approx(200_000 * 1 * KB)
        assert result.extras["serve_start"] > 0

    def test_flushes_create_sstables(self, tiny_topology):
        _jvm, server, result = self._run(
            tiny_topology, duration=240.0, ops_per_second=4000.0,
        )
        # memtable cap 1.5 GB is never hit in 240 s at this rate; use the
        # stats to assert flush bookkeeping is consistent either way.
        assert server.memtable.flush_count == result.extras["server_stats"].flushes
