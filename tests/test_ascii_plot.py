"""Tests for the terminal scatter plots."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import MARKERS, scatter_plot
from repro.errors import ConfigError


def simple_series():
    xs = np.linspace(0, 10, 20)
    return {"up": (xs, xs), "flat": (xs, np.full(20, 5.0))}


class TestScatterPlot:
    def test_renders_markers(self):
        out = scatter_plot(simple_series())
        assert "o" in out and "x" in out

    def test_title_and_labels(self):
        out = scatter_plot(simple_series(), title="T", x_label="time",
                           y_label="pause")
        assert out.splitlines()[0] == "T"
        assert "(time)" in out
        assert "[pause]" in out

    def test_legend_maps_markers(self):
        out = scatter_plot(simple_series())
        assert "o=up" in out and "x=flat" in out

    def test_axis_extremes_labelled(self):
        out = scatter_plot({"s": ([1.0, 9.0], [2.0, 8.0])})
        assert "9" in out and "8" in out

    def test_dimensions(self):
        out = scatter_plot(simple_series(), width=40, height=8)
        plot_rows = [l for l in out.splitlines() if l.endswith("|")]
        assert len(plot_rows) == 8
        assert all(len(l.split("|")[1]) == 40 for l in plot_rows)

    def test_rising_series_rises(self):
        out = scatter_plot({"up": ([0, 1, 2], [0, 1, 2])}, width=30, height=9)
        rows = [l.split("|")[1] for l in out.splitlines() if l.endswith("|")]
        top = rows[0].find("o")
        bottom = rows[-1].find("o")
        assert bottom == 0 and top == 29  # bottom-left to top-right

    def test_empty_series_dict_rejected(self):
        with pytest.raises(ConfigError):
            scatter_plot({})

    def test_empty_arrays_rejected(self):
        with pytest.raises(ConfigError):
            scatter_plot({"s": ([], [])})

    def test_mismatched_series_rejected(self):
        with pytest.raises(ConfigError):
            scatter_plot({"s": ([1.0], [1.0, 2.0])})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": ([1.0], [1.0]) for i in range(len(MARKERS) + 1)}
        with pytest.raises(ConfigError):
            scatter_plot(series)

    def test_tiny_plot_rejected(self):
        with pytest.raises(ConfigError):
            scatter_plot(simple_series(), width=4, height=2)

    def test_single_point(self):
        out = scatter_plot({"s": ([5.0], [5.0])})
        assert "o" in out

    def test_constant_series_no_div_by_zero(self):
        out = scatter_plot({"s": ([1.0, 1.0], [3.0, 3.0])})
        assert "o" in out
