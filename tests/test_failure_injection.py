"""Failure-injection tests: the simulator degrades cleanly, not weirdly.

A production-quality harness must survive misbehaving workloads and
collector faults: the world must never stay stopped, crashed runs must be
reported (not hung), and the engine must remain reusable state-wise.
"""

import pytest

from repro import JVM, OutOfMemoryError
from repro.errors import ReproError, SimulationError
from repro.gc.base import Outcome, STWPause
from repro.heap.lifetime import Exponential
from repro.units import MB
from tests.test_jvm_threads import ScriptedWorkload


class TestWorkloadFaults:
    def test_non_repro_exception_propagates(self, small_jvm_config):
        def script(jvm, result):
            yield jvm.engine.timeout(0.5)
            raise ValueError("driver bug")

        jvm = JVM(small_jvm_config())
        with pytest.raises(ValueError):
            jvm.run(ScriptedWorkload(script))

    def test_mutator_repro_error_crashes_run_cleanly(self, small_jvm_config):
        def script(jvm, result):
            def body(ctx):
                yield from ctx.allocate(10 * MB, Exponential(1.0))
                raise OutOfMemoryError(1, 0)

            yield from jvm.join([jvm.spawn_mutator(body)])

        jvm = JVM(small_jvm_config())
        result = jvm.run(ScriptedWorkload(script))
        assert result.crashed
        assert "OutOfMemoryError" in result.crash_reason

    def test_driver_that_never_finishes_is_flagged(self, small_jvm_config):
        def script(jvm, result):
            # waits on an event nobody triggers: queue drains, driver alive
            yield jvm.engine.event()

        jvm = JVM(small_jvm_config())
        result = jvm.run(ScriptedWorkload(script))
        assert result.crashed
        assert "did not finish" in result.crash_reason


class TestCollectorFaults:
    def test_world_released_when_collector_raises(self, small_jvm_config):
        """If a collector interaction raises, the STW flag must clear —
        no permanently frozen world."""
        jvm = JVM(small_jvm_config())

        def exploding(now):
            raise ReproError("collector bug")

        def script(j, result):
            with pytest.raises(ReproError):
                yield from j.world.gc_cycle(None, exploding, must_run=True)
            result.extras["stw_after"] = j.world.stw
            result.extras["in_progress"] = j.world.gc_in_progress

        result = jvm.run(ScriptedWorkload(script))
        assert result.extras["stw_after"] is False
        assert result.extras["in_progress"] is False

    def test_mutators_resume_after_collector_fault(self, small_jvm_config):
        jvm = JVM(small_jvm_config())

        def exploding(now):
            raise ReproError("collector bug")

        def script(j, result):
            def worker(ctx):
                yield from ctx.work(2.0)
                result.extras["worker_done"] = j.now

            proc = j.spawn_mutator(worker)
            yield j.engine.timeout(0.5)
            with pytest.raises(ReproError):
                yield from j.world.gc_cycle(None, exploding, must_run=True)
            yield from j.join([proc])

        result = jvm.run(ScriptedWorkload(script))
        assert result.extras["worker_done"] >= 2.0

    def test_zero_duration_pause_is_fine(self, small_jvm_config):
        jvm = JVM(small_jvm_config())

        def noop(now):
            return Outcome(pauses=[STWPause("vm-op", "test", 0.0)])

        def script(j, result):
            yield from j.world.gc_cycle(None, noop, must_run=True)

        result = jvm.run(ScriptedWorkload(script))
        assert not result.crashed
        assert jvm.gc_log.count == 1


class TestHeapFaults:
    def test_oom_leaves_heap_consistent(self, small_jvm_config):
        jvm = JVM(small_jvm_config())

        def script(j, result):
            def hog(ctx):
                for _ in range(50):
                    yield from ctx.allocate(50 * MB, None, pinned=True)

            yield from j.join([j.spawn_mutator(hog)])

        result = jvm.run(ScriptedWorkload(script))
        assert result.crashed
        # accounting is still coherent after the crash
        jvm.heap.check_invariants(jvm.now)
        assert jvm.heap.used <= jvm.heap.config.heap_bytes + 1e-6
