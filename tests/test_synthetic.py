"""Tests for the synthetic phase-structured workload builder."""

import pytest

from repro import JVM
from repro.errors import ConfigError
from repro.heap.lifetime import Exponential, Immortal
from repro.units import GB, MB
from repro.workloads.synthetic import (
    AllocationPhase,
    PhaseStats,
    SyntheticWorkload,
)


def run(phases, cfg_factory, threads=4, **cfg):
    jvm = JVM(cfg_factory(**cfg))
    result = jvm.run(SyntheticWorkload(phases, threads=threads))
    return jvm, result


class TestValidation:
    def test_empty_phase_list_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticWorkload([])

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigError):
            AllocationPhase("x", duration=0, alloc_rate=1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            AllocationPhase("x", duration=1.0, alloc_rate=-1.0)

    def test_default_lifetime_short(self):
        phase = AllocationPhase("x", duration=1.0, alloc_rate=1.0)
        assert phase.dist().survival(10.0) < 1e-3


class TestExecution:
    def test_phases_run_in_order(self, small_jvm_config):
        phases = [
            AllocationPhase("a", duration=1.0, alloc_rate=10 * MB),
            AllocationPhase("b", duration=2.0, alloc_rate=10 * MB),
        ]
        _jvm, result = run(phases, small_jvm_config)
        stats = result.extras["phase_stats"]
        assert [s.name for s in stats] == ["a", "b"]
        assert stats[1].wall_seconds >= 2.0

    def test_allocation_volume_accounted(self, small_jvm_config):
        phases = [AllocationPhase("a", duration=2.0, alloc_rate=20 * MB)]
        _jvm, result = run(phases, small_jvm_config, threads=4)
        stats = result.extras["phase_stats"][0]
        # 4 threads x 2 s x 20 MB/s
        assert stats.allocated_bytes == pytest.approx(160 * MB, rel=0.01)

    def test_gc_activity_attributed_to_hot_phase(self, small_jvm_config):
        phases = [
            AllocationPhase("cold", duration=1.0, alloc_rate=1 * MB),
            AllocationPhase("hot", duration=1.0, alloc_rate=100 * MB),
        ]
        _jvm, result = run(phases, small_jvm_config, threads=4)
        cold, hot = result.extras["phase_stats"]
        assert hot.gc_pauses > cold.gc_pauses

    def test_pinned_growth_lands_in_heap(self, small_jvm_config):
        phases = [
            AllocationPhase("build", duration=0.5, alloc_rate=1 * MB,
                            lifetime=Immortal(), pinned_growth=64 * MB),
            AllocationPhase("serve", duration=0.5, alloc_rate=1 * MB),
        ]
        jvm, result = run(phases, small_jvm_config)
        assert result.extras["live_set_bytes"] == pytest.approx(64 * MB)
        assert jvm.heap.live_estimate(jvm.now) >= 64 * MB

    def test_pinned_release(self, small_jvm_config):
        phases = [
            AllocationPhase("build", duration=0.5, alloc_rate=1 * MB,
                            pinned_growth=64 * MB),
            AllocationPhase("teardown", duration=0.5, alloc_rate=1 * MB,
                            pinned_growth=-64 * MB),
        ]
        _jvm, result = run(phases, small_jvm_config)
        assert result.extras["live_set_bytes"] == pytest.approx(0.0)

    def test_dirty_rate_feeds_card_table(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        phases = [
            # Big enough to be promoted into the old generation (the card
            # table only covers old-gen data).
            AllocationPhase("build", duration=0.2, alloc_rate=1 * MB,
                            pinned_growth=160 * MB),
            AllocationPhase("mutate", duration=1.0, alloc_rate=1 * MB,
                            dirty_rate=16 * MB),
        ]
        result = jvm.run(SyntheticWorkload(phases, threads=2))
        assert not result.crashed
        assert jvm.heap.dirty_card_bytes > 0

    def test_build_then_serve_pause_profile(self, small_jvm_config):
        """The phase structure shows up in GC behaviour: a build phase
        (live data) makes collections during serve more expensive than a
        serve-only run."""
        build_serve = [
            AllocationPhase("build", duration=1.0, alloc_rate=30 * MB,
                            lifetime=Immortal(), pinned_growth=128 * MB),
            AllocationPhase("serve", duration=2.0, alloc_rate=60 * MB),
        ]
        serve_only = [
            AllocationPhase("serve", duration=2.0, alloc_rate=60 * MB),
        ]
        _j1, with_build = run(build_serve, small_jvm_config, threads=4)
        _j2, without = run(serve_only, small_jvm_config, threads=4)
        assert (with_build.gc_log.total_pause > without.gc_log.total_pause)

    def test_deterministic(self, small_jvm_config):
        phases = [AllocationPhase("a", duration=1.0, alloc_rate=50 * MB)]
        _a, ra = run(phases, small_jvm_config, threads=4, seed=9)
        _b, rb = run(phases, small_jvm_config, threads=4, seed=9)
        assert ra.execution_time == rb.execution_time
