"""Tests for the runtime InvariantAuditor (repro.lint.audit)."""

import math

import pytest

from repro import JVM
from repro.gc.registry import GC_NAMES
from repro.gc.stats import PauseRecord
from repro.lint import (
    AuditError,
    InvariantAuditor,
    validate_pause_record,
)
from repro.units import MB
from repro.workloads.dacapo import get_benchmark


def pause_record(**overrides):
    kw = dict(
        start=1.0, duration=0.01, kind="young", cause="Allocation Failure",
        collector="ParallelOldGC", heap_used_before=64 * MB,
        heap_used_after=32 * MB, promoted=1 * MB,
    )
    kw.update(overrides)
    return PauseRecord(**kw)


class TestSchema:
    def test_well_formed_record_passes(self):
        assert validate_pause_record(pause_record()) == []

    @pytest.mark.parametrize("field,value", [
        ("start", float("nan")),
        ("start", -1.0),
        ("duration", float("inf")),
        ("duration", -0.5),
        ("kind", "banana"),
        ("cause", ""),
        ("collector", ""),
        ("promoted", float("nan")),
    ])
    def test_malformed_field_reported(self, field, value):
        problems = validate_pause_record(pause_record(**{field: value}))
        assert any(p.startswith(f"{field}:") for p in problems)

    def test_collection_never_creates_bytes(self):
        problems = validate_pause_record(
            pause_record(heap_used_before=10 * MB, heap_used_after=20 * MB)
        )
        assert any(p.startswith("heap_used_after:") for p in problems)

    def test_used_before_bounded_by_capacity(self):
        problems = validate_pause_record(
            pause_record(heap_used_before=100 * MB), heap_capacity=64 * MB
        )
        assert any(p.startswith("heap_used_before:") for p in problems)


class TestFullRunsAreClean:
    """The ISSUE's acceptance bar: byte conservation and STW exclusivity
    hold over full DaCapo-profile simulations for every collector."""

    @pytest.mark.parametrize("gc", GC_NAMES)
    def test_dacapo_run_audits_clean(self, gc, small_jvm_config):
        jvm = JVM(small_jvm_config(gc=gc))
        auditor = InvariantAuditor()
        with auditor.attached(jvm):
            jvm.run(get_benchmark("xalan"), iterations=2, system_gc=True)
        auditor.assert_clean()
        assert auditor.counters["minor_collections"] > 0
        assert auditor.counters["pauses"] > 0
        assert auditor.counters["allocations"] > 0
        assert "clean" in auditor.summary()


class TestViolationDetection:
    def test_corrupted_minor_accounting_is_caught(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        orig = jvm.heap.minor_collection

        def corrupt(now, tenuring, **kw):
            vol = orig(now, tenuring, **kw)
            vol.promoted += 5 * MB  # misreport: bytes from nowhere
            return vol

        jvm.heap.minor_collection = corrupt
        auditor = InvariantAuditor().attach(jvm)
        jvm.heap.minor_collection(0.0, 15)
        assert not auditor.ok
        assert auditor.violations[0].check == "byte-conservation"
        with pytest.raises(AuditError, match="leaks bytes"):
            auditor.assert_clean()

    def test_non_finite_clock_is_caught(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        jvm.engine.call_at(1.0, lambda: setattr(jvm.engine, "now", float("nan")))
        jvm.engine.step()
        assert [v.check for v in auditor.violations] == ["clock"]

    def test_allocation_during_stw_is_caught_live(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        jvm.world.stw = True
        jvm.heap.allocate(0.0, 1024.0, None, pinned=True)
        assert any(v.check == "stw-exclusivity" for v in auditor.violations)

    def test_allocation_inside_pause_caught_posthoc(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        jvm.heap.allocate(5.0, 1024.0, None, pinned=True)  # mutator allocates at t=5
        jvm.gc_log.record(pause_record(start=4.0, duration=2.0))
        assert any(
            v.check == "stw-exclusivity" and "inside STW pause" in v.detail
            for v in auditor.violations
        )

    def test_overlapping_pauses_are_caught(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        jvm.gc_log.record(pause_record(start=1.0, duration=1.0))
        jvm.gc_log.record(pause_record(start=1.5, duration=0.1))
        assert any(
            v.check == "stw-exclusivity" and "overlaps" in v.detail
            for v in auditor.violations
        )

    def test_malformed_record_caught_at_runtime(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        jvm.gc_log.record(pause_record(kind="banana"))
        assert any(v.check == "gc-log-schema" for v in auditor.violations)

    def test_strict_mode_raises_immediately(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        InvariantAuditor(strict=True).attach(jvm)
        jvm.world.stw = True
        with pytest.raises(AuditError):
            jvm.heap.allocate(0.0, 1024.0, None, pinned=True)


class TestLifecycle:
    def test_detach_restores_instrumented_methods(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        assert "minor_collection" in jvm.heap.__dict__
        assert jvm.engine.step_hook is not None  # slotted: hook, not patch
        auditor.detach()
        assert "minor_collection" not in jvm.heap.__dict__
        assert jvm.engine.step_hook is None
        assert "record" not in jvm.gc_log.__dict__

    def test_double_attach_rejected(self, small_jvm_config):
        jvm = JVM(small_jvm_config())
        auditor = InvariantAuditor().attach(jvm)
        with pytest.raises(AuditError):
            auditor.attach(jvm)

    def test_detached_run_behaves_identically(self, small_jvm_config):
        """Audited and unaudited runs produce the same simulation — the
        auditor is pure observation."""
        def total_pause(audit):
            jvm = JVM(small_jvm_config())
            auditor = InvariantAuditor()
            if audit:
                auditor.attach(jvm)
            result = jvm.run(get_benchmark("lusearch"), iterations=2,
                             system_gc=True)
            return result.gc_log.total_pause

        assert math.isclose(total_pause(True), total_pause(False), rel_tol=0.0)
