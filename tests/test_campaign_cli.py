"""Tests for the ``repro-campaign`` command-line interface."""

import pytest

from repro.cli import campaign_main, dacapo_main

BASE = ["--benchmarks", "lusearch", "--gcs", "Serial", "ParallelOld",
        "--heaps", "1g", "--youngs", "256m", "--seeds", "0",
        "--iterations", "2"]


def run_args(store, *extra):
    return (["run", "--name", "smoke", "--store", str(store)]
            + BASE + ["--executor", "serial"] + list(extra))


class TestRunCommand:
    def test_run_then_cached_rerun(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert campaign_main(run_args(store)) == 0
        out = capsys.readouterr().out
        assert "simulated 2, cached 0/2" in out

        assert campaign_main(run_args(store)) == 0
        out = capsys.readouterr().out
        assert "simulated 0, cached 2/2" in out

    def test_process_executor_and_csv(self, tmp_path, capsys):
        store = tmp_path / "store"
        csv_path = tmp_path / "out.csv"
        args = (["run", "--name", "smoke", "--store", str(store)] + BASE
                + ["--executor", "process", "--workers", "2",
                   "--csv", str(csv_path)])
        assert campaign_main(args) == 0
        assert csv_path.exists()
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 3 and lines[0].startswith("benchmark,")

    def test_uncached_run_without_store(self, capsys):
        args = ["run", "--name", "x"] + BASE + ["--executor", "serial"]
        assert campaign_main(args) == 0
        assert "cached 0/2" in capsys.readouterr().out

    def test_quarantine_sets_exit_code(self, tmp_path, capsys):
        args = (["run", "--name", "bad", "--store", str(tmp_path / "s"),
                 "--benchmarks", "definitely-not-a-benchmark",
                 "--gcs", "Serial", "--heaps", "1g", "--seeds", "0",
                 "--iterations", "1", "--executor", "serial",
                 "--retries", "0"])
        assert campaign_main(args) == 1
        assert "quarantined" in capsys.readouterr().out

    def test_progress_flag(self, tmp_path, capsys):
        assert campaign_main(run_args(tmp_path / "s", "--progress")) == 0
        err = capsys.readouterr().err
        assert "cells 2/2" in err

    def test_empty_axis_rejected(self, tmp_path, capsys):
        args = (["run", "--name", "x", "--benchmarks", "lusearch",
                 "--gcs", "Serial", "--heaps", "1g",
                 "--seeds", "--executor", "serial"])
        # argparse requires at least one value for nargs="+"
        with pytest.raises(SystemExit):
            campaign_main(args)


class TestStatusResumeClean:
    @pytest.fixture()
    def populated_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        campaign_main(run_args(store))
        capsys.readouterr()
        return store

    def test_status(self, populated_store, capsys):
        assert campaign_main(["status", "--store", str(populated_store)]) == 0
        out = capsys.readouterr().out
        assert "2 records" in out and "smoke" in out

    def test_resume_uses_manifest_spec(self, populated_store, capsys):
        assert campaign_main(["resume", "--store", str(populated_store),
                              "--executor", "serial"]) == 0
        out = capsys.readouterr().out
        assert "resuming campaign 'smoke'" in out
        assert "cached 2/2" in out

    def test_resume_empty_store_fails(self, tmp_path, capsys):
        assert campaign_main(["resume", "--store", str(tmp_path / "empty"),
                              "--executor", "serial"]) == 2

    def test_resume_unknown_name_fails(self, populated_store, capsys):
        assert campaign_main(["resume", "--store", str(populated_store),
                              "--name", "nope", "--executor", "serial"]) == 2

    def test_clean_failures_only(self, populated_store, capsys):
        assert campaign_main(["clean", "--store", str(populated_store),
                              "--failures-only"]) == 0
        assert "dropped 0 failure record(s)" in capsys.readouterr().out
        # ok records survive: rerun is still fully cached
        campaign_main(run_args(populated_store))
        assert "cached 2/2" in capsys.readouterr().out

    def test_clean_all(self, populated_store, capsys):
        assert campaign_main(["clean", "--store", str(populated_store)]) == 0
        assert "dropped all 2 record(s)" in capsys.readouterr().out
        campaign_main(run_args(populated_store))
        assert "cached 0/2" in capsys.readouterr().out


class TestDaCapoProgress:
    def test_progress_reports_iterations(self, capsys):
        rc = dacapo_main(["lusearch", "-n", "2", "--heap", "1g",
                          "--young", "256m", "--progress"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "iterations 1/2" in err and "iterations 2/2" in err


class TestStatusJson:
    """`status --json` shares one schema with the serve status endpoint."""

    def test_schema(self, tmp_path, capsys):
        import json

        store = tmp_path / "store"
        campaign_main(run_args(store))
        capsys.readouterr()
        assert campaign_main(["status", "--store", str(store), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert set(status) == {"version", "root", "records", "ok", "failed",
                               "quarantined_lines", "campaigns"}
        assert status["records"] == status["ok"] == 2
        assert status["failed"] == status["quarantined_lines"] == 0
        (campaign,) = status["campaigns"]
        assert set(campaign) == {"name", "digest", "cells", "ok", "failed",
                                 "missing"}
        assert campaign["name"] == "smoke"
        assert campaign["cells"] == campaign["ok"] == 2
        assert campaign["missing"] == 0

    def test_matches_serve_status_endpoint_payload(self, tmp_path, capsys):
        import json

        from repro.campaign import ResultStore
        from repro.campaign.store import store_status

        store = tmp_path / "store"
        campaign_main(run_args(store))
        capsys.readouterr()
        campaign_main(["status", "--store", str(store), "--json"])
        via_cli = json.loads(capsys.readouterr().out)
        # The service's stats()["store"] section is the same function.
        via_api = store_status(ResultStore(store))
        assert via_cli == via_api
