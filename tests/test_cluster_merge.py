"""Tests for sharded result-store merging (``merge_stores``).

The fabric's correctness claim is that a store merged from N shards is
*byte-identical* to the compacted store of a serial run over the same
cells — the property CI's ``cluster-smoke`` job pins with ``cmp``. These
tests pin it in-process, plus the conflict policy (ok supersedes
failed), duplicate handling, and manifest merging.
"""

import json

from repro.campaign import (CellSpec, MergeStats, ResultStore, merge_stores,
                            run_campaign, run_cell)
from repro.campaign.spec import CampaignSpec
from repro.studies import GridSpec

GRID = GridSpec(benchmarks=["lusearch"], gcs=["Serial", "ParallelOld"],
                heaps=["1g"], youngs=["256m"], seeds=[0, 1], iterations=2)


def cells():
    return [CellSpec.from_axes(b, gc, h, y, s, iterations=GRID.iterations)
            for b, gc, h, y, s in GRID.cells()]


class TestMergeStores:
    def test_sharded_merge_byte_identical_to_serial_store(self, tmp_path):
        all_cells = cells()
        # Shard the grid across three stores round-robin, in a scrambled
        # order (merge output must not depend on either).
        shards = [ResultStore(str(tmp_path / f"shard{i}")) for i in range(3)]
        for i, cell in enumerate(reversed(all_cells)):
            shards[i % 3].record_ok(cell, run_cell(cell))

        stats = merge_stores([str(tmp_path / f"shard{i}") for i in range(3)],
                             str(tmp_path / "merged"))
        assert stats.sources == 3
        assert stats.records == stats.ok == len(all_cells)
        assert (stats.failed, stats.duplicates, stats.superseded) == (0, 0, 0)

        serial = ResultStore(str(tmp_path / "serial"))
        run_campaign(CampaignSpec(name="ref", grids=[GRID]), store=serial,
                     executor="serial")
        serial.compact()
        assert (tmp_path / "merged" / "records.jsonl").read_bytes() == \
               (tmp_path / "serial" / "records.jsonl").read_bytes()

    def test_ok_supersedes_failed_either_direction(self, tmp_path):
        cell = cells()[0]
        result = run_cell(cell)
        ok_first = ResultStore(str(tmp_path / "a"))
        ok_first.record_ok(cell, result)
        failed = ResultStore(str(tmp_path / "b"))
        failed.record_failure(cell, "timeout", "synthetic straggler",
                              attempts=2)

        # failed-source-first: the later ok record replaces it.
        stats = merge_stores([str(tmp_path / "b"), str(tmp_path / "a")],
                             str(tmp_path / "m1"))
        assert stats.superseded == 1 and stats.failed == 0 and stats.ok == 1
        # ok-source-first: the failed twin is dropped, same outcome.
        stats2 = merge_stores([str(tmp_path / "a"), str(tmp_path / "b")],
                              str(tmp_path / "m2"))
        assert stats2.superseded == 1 and stats2.failed == 0
        assert (tmp_path / "m1" / "records.jsonl").read_bytes() == \
               (tmp_path / "m2" / "records.jsonl").read_bytes()

    def test_identical_records_count_as_duplicates(self, tmp_path):
        cell = cells()[0]
        result = run_cell(cell)
        for name in ("a", "b"):
            store = ResultStore(str(tmp_path / name))
            store.record_ok(cell, result)
        stats = merge_stores([str(tmp_path / "a"), str(tmp_path / "b")],
                             str(tmp_path / "m"))
        assert stats.duplicates == 1 and stats.records == 1

    def test_manifests_merge_idempotently(self, tmp_path):
        spec = CampaignSpec(name="camp", grids=[GRID])
        shards = []
        for i in range(2):
            store = ResultStore(str(tmp_path / f"shard{i}"))
            store.register_campaign({"name": spec.name,
                                     "digest": spec.digest(),
                                     "spec": spec.to_dict()})
            shards.append(str(store.root))
        merge_stores(shards, str(tmp_path / "m"))
        campaigns = ResultStore(
            str(tmp_path / "m")).read_manifest().get("campaigns", [])
        assert len(campaigns) == 1 and campaigns[0]["name"] == "camp"

    def test_merge_into_existing_store_is_incremental(self, tmp_path):
        first, second = cells()[:2]
        dest = ResultStore(str(tmp_path / "dest"))
        dest.record_ok(first, run_cell(first))
        src = ResultStore(str(tmp_path / "src"))
        src.record_ok(second, run_cell(second))
        stats = merge_stores([str(tmp_path / "src")], dest)
        assert stats.records == 2 and stats.ok == 2

    def test_summary_line_is_grep_stable(self):
        stats = MergeStats(sources=3, records=8, ok=7, failed=1,
                           superseded=2, duplicates=4, quarantined_lines=1)
        assert stats.summary() == (
            "merged 3 stores: 8 records (7 ok, 1 failed), 4 duplicates, "
            "2 failures superseded, 1 corrupt lines dropped")

    def test_merged_records_are_canonical_json(self, tmp_path):
        cell = cells()[0]
        store = ResultStore(str(tmp_path / "s"))
        store.record_ok(cell, run_cell(cell))
        merge_stores([str(tmp_path / "s")], str(tmp_path / "m"))
        lines = (tmp_path / "m" / "records.jsonl").read_bytes().splitlines()
        for line in lines:
            rec = json.loads(line)
            canonical = json.dumps(rec, sort_keys=True,
                                   separators=(",", ":")).encode()
            assert line == canonical
