"""Integration tests for the repro-serve experiment service.

Everything runs in-process on a real Unix socket (no pytest-asyncio in
the environment, so each test owns its loop via ``asyncio.run``). The
injectable ``cell_fn`` supplies doctored behaviours — gated, crashing,
worker-killing — without faking simulator output.
"""

import asyncio
import contextlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading

import pytest

from repro.campaign import CellSpec, ResultStore, encode_run, run_campaign, run_cell
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigError
from repro.serve import ExperimentService, ServiceConfig, ServiceClient
from repro.studies import GridSpec

ROOT = pathlib.Path(__file__).resolve().parents[1]

#: One small, fast cell shared by the determinism tests (~10 ms to run).
JOB = {"benchmark": "lusearch", "gc": "Serial", "heap": "1g",
       "young": "256m", "seed": 0, "iterations": 2}
CELL = CellSpec.from_axes("lusearch", "Serial", "1g", "256m", 0, iterations=2)


def canon(d):
    """Canonical JSON bytes — the byte-identity yardstick."""
    return json.dumps(d, sort_keys=True, separators=(",", ":"))


@contextlib.asynccontextmanager
async def service(tmp_path, **kw):
    cell_fn = kw.pop("cell_fn", run_cell)
    defaults = dict(store=str(tmp_path / "store"),
                    socket_path=str(tmp_path / "serve.sock"))
    defaults.update(kw)
    svc = ExperimentService(ServiceConfig(**defaults), cell_fn=cell_fn)
    await svc.start()
    try:
        yield svc
    finally:
        await svc.close()


async def wait_until(cond, timeout=10.0, what="condition"):
    for _ in range(int(timeout / 0.01)):
        if cond():
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


def gated(event):
    """A cell_fn that blocks until *event* is set, then runs for real."""
    def fn(cell):
        assert event.wait(timeout=30.0)
        return run_cell(cell)
    return fn


# Module level so the process-pool tests can pickle them.
def _kill_worker(cell):
    if cell.seed == 999:
        os._exit(17)        # simulates a hard worker crash (no cleanup)
    return run_cell(cell)


def _always_raises(cell):
    raise RuntimeError(f"synthetic failure for {cell.benchmark}")


# ----------------------------------------------------------------------
# Determinism and caching
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_served_run_byte_identical_to_campaign_path(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                first = await client.submit(JOB, timeout=60)
                second = await client.submit(JOB, timeout=60)
                stats = await client.status(timeout=10)
                await client.close()
                return first, second, stats

        first, second, stats = asyncio.run(main())
        assert first["type"] == second["type"] == "result"
        assert first["cached"] is False and second["cached"] is True
        # The proof: the service's run payload is byte-identical to the
        # campaign codec's output for the same cell, both times.
        direct = encode_run(run_cell(CELL))
        assert canon(first["run"]) == canon(direct)
        assert canon(second["run"]) == canon(direct)
        assert first["digest"] == second["digest"] == CELL.digest()
        # Wall-clock observations live in meta only, never in run.
        assert "exec_s" in first["meta"] and "exec_s" not in first["run"]
        assert stats["cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}

    def test_resubmission_is_100_percent_cache_hit(self, tmp_path):
        async def round_trip():
            async with service(tmp_path) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                resp = await client.submit(JOB, timeout=60)
                await client.close()
                return resp

        first = asyncio.run(round_trip())
        # A *fresh* service over the same store must serve from cache.
        second = asyncio.run(round_trip())
        assert first["cached"] is False and second["cached"] is True
        assert canon(first["run"]) == canon(second["run"])

    def test_campaign_sees_service_results_as_cached(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                resp = await client.submit(JOB, timeout=60)
                await client.close()
                return resp

        resp = asyncio.run(main())
        assert resp["type"] == "result"
        spec = CampaignSpec("shared", [GridSpec(
            benchmarks=["lusearch"], gcs=["Serial"], heaps=["1g"],
            youngs=["256m"], seeds=[0], iterations=2)])
        result = run_campaign(spec, store=str(tmp_path / "store"),
                              executor="serial")
        assert result.stats.total == 1
        assert result.stats.cached == 1 and result.stats.simulated == 0

    def test_store_record_matches_wire_payload(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                resp = await client.submit(JOB, timeout=60)
                await client.close()
                return resp

        resp = asyncio.run(main())
        store = ResultStore(tmp_path / "store")
        rec = store.get(CELL.digest())
        assert rec["status"] == "ok"
        assert canon(rec["run"]) == canon(resp["run"])


# ----------------------------------------------------------------------
# Admission control and coalescing
# ----------------------------------------------------------------------


class TestAdmission:
    def test_queue_full_gets_explicit_429(self, tmp_path):
        gate = threading.Event()

        async def main():
            async with service(tmp_path, cell_fn=gated(gate), workers=1,
                               queue_limit=1) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                jobs = [dict(JOB, seed=s) for s in (1, 2, 3)]
                # First job occupies the single worker...
                t1 = asyncio.ensure_future(client.submit(jobs[0], timeout=60))
                await wait_until(lambda: svc._queue.qsize() == 0
                                 and svc._inflight, what="job 1 started")
                # ...second fills the queue...
                t2 = asyncio.ensure_future(client.submit(jobs[1], timeout=60))
                await wait_until(lambda: svc._queue.qsize() == 1,
                                 what="job 2 queued")
                # ...third must be explicitly rejected, not hang.
                r3 = await asyncio.wait_for(client.submit(jobs[2]), timeout=10)
                gate.set()
                r1, r2 = await asyncio.gather(t1, t2)
                stats = await client.status(timeout=10)
                await client.close()
                return r1, r2, r3, stats

        r1, r2, r3, stats = asyncio.run(main())
        assert r1["type"] == "result" and r2["type"] == "result"
        assert r3["type"] == "rejected" and r3["code"] == 429
        assert "queue full" in r3["reason"]
        assert stats["metrics"]["counters"]["jobs.rejected"] == 1

    def test_duplicate_submissions_coalesce(self, tmp_path):
        gate = threading.Event()

        async def main():
            async with service(tmp_path, cell_fn=gated(gate),
                               workers=2) as svc:
                a = await ServiceClient.connect(svc.config.socket_path)
                b = await ServiceClient.connect(svc.config.socket_path)
                t1 = asyncio.ensure_future(a.submit(JOB, timeout=60))
                await wait_until(lambda: svc._inflight,
                                 what="first submit admitted")
                t2 = asyncio.ensure_future(b.submit(JOB, timeout=60))
                await wait_until(
                    lambda: svc.metrics.counter("jobs.coalesced").value == 1,
                    what="second submit coalesced")
                gate.set()
                r1, r2 = await asyncio.gather(t1, t2)
                stats = await a.status(timeout=10)
                await a.close()
                await b.close()
                return r1, r2, stats

        r1, r2, stats = asyncio.run(main())
        assert r1["type"] == r2["type"] == "result"
        assert canon(r1["run"]) == canon(r2["run"])
        counters = stats["metrics"]["counters"]
        # One simulation answered both clients.
        assert counters["jobs.simulated"] == 1
        assert counters["jobs.coalesced"] == 1
        assert counters["cache.hits"] == 0


# ----------------------------------------------------------------------
# Failure supervision
# ----------------------------------------------------------------------


class TestSupervision:
    def test_retry_then_quarantine_keeps_service_alive(self, tmp_path):
        async def main():
            async with service(tmp_path, cell_fn=_always_raises,
                               retries=2) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                resp = await client.submit(JOB, timeout=60)
                pong = await client.ping(timeout=10)
                stats = await client.status(timeout=10)
                await client.close()
                return resp, pong, stats

        resp, pong, stats = asyncio.run(main())
        assert resp["type"] == "failed"
        failure = resp["failure"]
        assert failure["kind"] == "exception"
        assert "synthetic failure" in failure["error"]
        assert failure["attempts"] == 3          # 1 try + 2 retries
        assert "exc" not in failure              # never the live exception
        assert pong["type"] == "pong"            # the service survived
        assert stats["metrics"]["counters"]["jobs.retried"] == 2
        assert stats["metrics"]["counters"]["jobs.quarantined"] == 1
        # Quarantined exactly like the campaign runner would record it.
        store = ResultStore(tmp_path / "store")
        rec = store.get(CELL.digest())
        assert rec["status"] == "failed" and rec["kind"] == "exception"
        assert rec["attempts"] == 3

    def test_killed_worker_recycles_pool_and_service_recovers(self, tmp_path):
        async def main():
            async with service(tmp_path, cell_fn=_kill_worker,
                               executor="process", pool_workers=1,
                               retries=1, workers=1) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                # seed=999 makes the pool worker os._exit mid-cell.
                bad = await client.submit(dict(JOB, seed=999), timeout=120)
                good = await client.submit(JOB, timeout=120)
                stats = await client.status(timeout=10)
                await client.close()
                return bad, good, stats

        bad, good, stats = asyncio.run(main())
        assert bad["type"] == "failed"
        assert bad["failure"]["kind"] == "broken-pool"
        assert bad["failure"]["attempts"] == 2
        # The pool was recycled and the next job simulated normally.
        assert good["type"] == "result" and good["cached"] is False
        assert canon(good["run"]) == canon(encode_run(run_cell(CELL)))
        assert stats["workers"]["pools_recycled"] >= 1
        assert stats["workers"]["alive"] == 1


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_pending_and_rejects_new(self, tmp_path):
        gate = threading.Event()

        async def main():
            async with service(tmp_path, cell_fn=gated(gate), workers=1,
                               queue_limit=8) as svc:
                a = await ServiceClient.connect(svc.config.socket_path)
                b = await ServiceClient.connect(svc.config.socket_path)
                pending = [asyncio.ensure_future(
                    a.submit(dict(JOB, seed=s), timeout=60)) for s in (1, 2)]
                await wait_until(lambda: len(svc._inflight) == 2,
                                 what="both jobs admitted")
                drain_task = asyncio.ensure_future(b.drain(timeout=60))
                await wait_until(lambda: svc._draining, what="draining flag")
                # Submissions during the drain get an explicit 503.
                refused = await a.submit(dict(JOB, seed=3), timeout=10)
                gate.set()
                drained = await drain_task
                results = await asyncio.gather(*pending)
                await a.close()
                await b.close()
                return refused, drained, results

        refused, drained, results = asyncio.run(main())
        assert refused["type"] == "rejected" and refused["code"] == 503
        assert drained["type"] == "drained"
        # Every in-flight job completed before the drain resolved.
        assert [r["type"] for r in results] == ["result", "result"]
        stats = drained["stats"]
        assert stats["draining"] is True
        assert stats["queue"] == {"depth": 0, "limit": 8, "inflight": 0}
        assert stats["cache"]["misses"] == 2
        assert stats["metrics"]["counters"].get("jobs.quarantined", 0) == 0

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "serve", "--socket", sock,
             "--store", str(tmp_path / "store"), "--workers", "1"],
            cwd=str(ROOT), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            async def main():
                for _ in range(200):
                    if os.path.exists(sock):
                        break
                    await asyncio.sleep(0.05)
                client = await ServiceClient.connect(sock)
                resp = await client.submit(JOB, timeout=120)
                await client.close()
                return resp

            resp = asyncio.run(main())
            assert resp["type"] == "result"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained" in out
        assert not os.path.exists(sock)          # socket cleaned up
        # The SIGTERM'd service's result is on disk and intact.
        assert ResultStore(tmp_path / "store").get_run(CELL.digest()) is not None


# ----------------------------------------------------------------------
# Protocol robustness over a live socket
# ----------------------------------------------------------------------


class TestWireRobustness:
    def test_disconnect_mid_line_does_not_kill_service(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                reader, writer = await asyncio.open_unix_connection(
                    svc.config.socket_path)
                writer.write(b'{"op": "submit", "job": {"bench')  # no \n
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await wait_until(
                    lambda: svc.metrics.counter("connections.closed").value
                    == 1, what="server-side cleanup")
                client = await ServiceClient.connect(svc.config.socket_path)
                pong = await client.ping(timeout=10)
                await client.close()
                return pong

        assert asyncio.run(main())["type"] == "pong"

    def test_disconnect_with_job_in_flight(self, tmp_path):
        gate = threading.Event()

        async def main():
            async with service(tmp_path, cell_fn=gated(gate)) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                task = asyncio.ensure_future(client.submit(JOB, timeout=60))
                await wait_until(lambda: svc._inflight, what="job admitted")
                task.cancel()
                await client.close()             # client gives up and leaves
                gate.set()
                await wait_until(
                    lambda: svc.metrics.counter("jobs.simulated").value == 1,
                    what="job still completed")
                other = await ServiceClient.connect(svc.config.socket_path)
                resp = await other.submit(JOB, timeout=60)
                await other.close()
                return resp

        resp = asyncio.run(main())
        # The abandoned job's result was stored; the rerun is a cache hit.
        assert resp["type"] == "result" and resp["cached"] is True

    def test_oversized_line_gets_413_and_drops_connection(self, tmp_path):
        async def main():
            async with service(tmp_path, max_line_bytes=2048) as svc:
                reader, writer = await asyncio.open_unix_connection(
                    svc.config.socket_path)
                writer.write(b'{"op":"ping","pad":"' + b"x" * 8192 + b'"}\n')
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                msg = json.loads(line)
                eof = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                await writer.wait_closed()
                client = await ServiceClient.connect(svc.config.socket_path)
                pong = await client.ping(timeout=10)
                await client.close()
                return msg, eof, pong

        msg, eof, pong = asyncio.run(main())
        assert msg["type"] == "error" and msg["code"] == 413
        assert eof == b""                        # framing lost: conn dropped
        assert pong["type"] == "pong"

    def test_malformed_line_gets_400_and_connection_survives(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                reader, writer = await asyncio.open_unix_connection(
                    svc.config.socket_path)
                writer.write(b"this is not json\n")
                writer.write(b'{"op":"ping","id":1}\n')
                await writer.drain()
                err = json.loads(await reader.readline())
                pong = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return err, pong

        err, pong = asyncio.run(main())
        assert err["type"] == "error" and err["code"] == 400
        assert pong["type"] == "pong" and pong["id"] == 1


# ----------------------------------------------------------------------
# Event streaming
# ----------------------------------------------------------------------


class TestEvents:
    def test_subscriber_sees_job_lifecycle(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                watcher = await ServiceClient.connect(svc.config.socket_path)
                await watcher.subscribe()
                client = await ServiceClient.connect(svc.config.socket_path)
                await client.submit(JOB, timeout=60)
                await client.submit(JOB, timeout=60)      # cache hit
                kinds = []
                async for event in watcher.events():
                    kinds.append(event["kind"])
                    if event["kind"] == "cache-hit":
                        break
                await client.close()
                await watcher.close()
                return kinds

        kinds = asyncio.run(main())
        assert kinds[:3] == ["queued", "started", "completed"]
        assert kinds[-1] == "cache-hit"


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestConfig:
    @pytest.mark.parametrize("kw", [
        {"queue_limit": 0}, {"workers": 0}, {"retries": -1},
    ])
    def test_bad_config_rejected(self, kw):
        with pytest.raises(ConfigError):
            ServiceConfig(**kw)


# ----------------------------------------------------------------------
# Cancellation (the cluster coordinator's steal primitive)
# ----------------------------------------------------------------------


class TestCancel:
    def test_queued_job_is_cancelled_and_waiters_learn(self, tmp_path):
        gate = threading.Event()

        async def main():
            async with service(tmp_path, workers=1,
                               cell_fn=gated(gate)) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                blocker = asyncio.ensure_future(
                    client.submit(JOB, timeout=60))
                await wait_until(lambda: svc.metrics.counter(
                    "jobs.accepted").value == 1, what="the blocker to queue")
                victim_job = dict(JOB, seed=7)
                digest = CellSpec.from_axes(
                    "lusearch", "Serial", "1g", "256m", 7,
                    iterations=2).digest()
                waiter = asyncio.ensure_future(
                    client.submit(victim_job, timeout=60))
                await wait_until(lambda: svc.metrics.counter(
                    "jobs.accepted").value == 2, what="the victim to queue")
                verdict = await client.cancel(digest, timeout=10)
                withdrawn = await waiter        # the waiter is notified
                gate.set()
                first = await blocker
                stats = await client.status(timeout=10)
                await client.close()
                return verdict, withdrawn, first, stats, digest

        verdict, withdrawn, first, stats, digest = asyncio.run(main())
        assert verdict["outcome"] == "cancelled"
        assert verdict["digest"] == digest
        assert withdrawn["type"] == "cancelled"
        assert first["type"] == "result"        # the started job finished
        counters = stats["metrics"]["counters"]
        assert counters["jobs.cancelled"] == 1
        assert counters["jobs.simulated"] == 1  # the victim never ran

    def test_started_job_answers_busy(self, tmp_path):
        gate = threading.Event()

        async def main():
            async with service(tmp_path, workers=1,
                               cell_fn=gated(gate)) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                task = asyncio.ensure_future(client.submit(JOB, timeout=60))
                await wait_until(
                    lambda: any(j.started is not None
                                for j in svc._inflight.values()),
                    what="the job to start")
                verdict = await client.cancel(CELL.digest(), timeout=10)
                gate.set()
                resp = await task
                await client.close()
                return verdict, resp

        verdict, resp = asyncio.run(main())
        assert verdict["outcome"] == "busy"
        assert resp["type"] == "result"

    def test_unknown_digest_and_malformed_cancel(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                unknown = await client.cancel("a" * 64, timeout=10)
                # A cancel without a digest is a 400, not a hang.
                rid = 999
                queue = await client._request(
                    {"op": "cancel", "id": rid}, rid)
                malformed = await client._next(queue, 10)
                client._pending.pop(rid, None)
                await client.close()
                return unknown, malformed

        unknown, malformed = asyncio.run(main())
        assert unknown["outcome"] == "unknown"
        assert malformed["type"] == "error" and malformed["code"] == 400

    def test_status_ships_the_full_pause_histogram(self, tmp_path):
        async def main():
            async with service(tmp_path) as svc:
                client = await ServiceClient.connect(svc.config.socket_path)
                await client.submit(JOB, timeout=60)
                stats = await client.status(timeout=10)
                await client.close()
                return stats

        stats = asyncio.run(main())
        pauses = stats["pauses"]
        assert pauses["count"] > 0
        from repro.telemetry.hist import LogHistogram

        hist = LogHistogram.from_dict(pauses["hist"])
        # The encoded histogram carries exactly the summarized pauses, so
        # a coordinator can merge shards without losing precision.
        assert hist.total_count == pauses["count"]
        assert hist.percentile(99.0) == pauses["p99"]
